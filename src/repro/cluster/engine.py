"""The deterministic fleet event loop: service nodes over data nodes.

:class:`ClusterSimulator` replays one seeded arrival stream through a whole
fleet::

    arrive -> pick service node -> cache? -> admit / shed -> deadline batch
           -> per-shard tasks to replica data nodes -> slots / FIFO / steal
           -> results return -> cross-shard top-k merge -> complete

on a single event heap with seven event kinds, ordered
``(time, kind, sequence)`` so ties resolve identically on every run:
fault-plan edges first (a node must change state before work lands on it),
then autoscaler evaluations, task completions, merges, cache hits, batch
deadlines, and finally arrivals.

Failover protocol: a node crash cancels its running and queued tasks; each
is **redispatched** to a surviving reachable replica (new transfer, new
execution) or **parked** when no replica is routable, then **unparked** by
the next recovery edge.  Every decision lands on the failover timeline in
event order — the determinism tests compare that timeline byte-for-byte
across runs.

Work stealing: a data node that drains its queue pulls a queued task for a
shard it replicates from the most-backlogged node, paying the re-transfer.
``ClusterConfig.steal_policy`` picks the end of the victim's queue
(``newest`` by default, ``oldest``, or ``none`` to disable) — a sweep axis
for the :mod:`repro.ablate` fleet-policy campaign.  Background crawlers and
brownout windows multiply execution time at task start (when they are
knowable), never retroactively.
"""

from __future__ import annotations

import heapq
import logging
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..errors import ConfigurationError, SimulationError, WorkloadError
from ..faults.plan import (
    EDGE_NODE_DOWN,
    EDGE_NODE_UP,
    EDGE_PARTITION_HEAL,
    EDGE_PARTITION_START,
    ClusterFaultConfig,
    ClusterFaultPlan,
)
from ..lint.simsan import get_sanitizer
from ..obs import CLUSTER_TRACK, get_registry, get_tracer
from ..obs.causal import get_collector
from ..obs.digest import DigestRecorder
from ..serve.admission import AdmissionConfig, AdmissionController
from ..serve.degrade import DegradationLadder
from ..serve.node import ServiceNodeCore
from ..serve.request import Request
from ..serve.router import MERGE_ENTRY_BYTES
from ..serve.scheduler import AffineServiceModel, DeadlineBatcher
from .autoscale import Autoscaler
from .cache import HotLabelCache, zipf_keys
from .crawlers import CrawlerSchedule
from .nodes import BatchState, DataNode, FleetCounters, ServiceNode, ShardTask
from .placement import Placement, place_replicas
from .report import (
    ClusterReport,
    FailoverEvent,
    build_latency_array,
    shard_outage_seconds,
)
from .topology import REQUEST_BYTES, ClusterConfig

logger = logging.getLogger(__name__)

# Event kinds, in tie-break order at equal timestamps.
_KIND_EDGE = 0
_KIND_SCALE = 1
_KIND_TASK = 2
_KIND_MERGE = 3
_KIND_CACHE = 4
_KIND_DEADLINE = 5
_KIND_ARRIVAL = 6


class ClusterSimulator:
    """Drives the whole fleet over one arrival stream (see module docstring)."""

    def __init__(
        self,
        service: AffineServiceModel,
        config: ClusterConfig,
        placement: Placement,
        fault_plan: ClusterFaultPlan,
        crawlers: CrawlerSchedule,
        seed: int = 0,
        digest_recorder: Optional[DigestRecorder] = None,
    ) -> None:
        if len(placement.assignments) != config.shards:
            raise ConfigurationError(
                f"placement covers {len(placement.assignments)} shards, "
                f"config says {config.shards}"
            )
        self.service = service
        self.config = config
        self.placement = placement
        self.fault_plan = fault_plan
        self.crawlers = crawlers
        self.seed = seed
        self.digest_recorder = digest_recorder

        worst = self.worst_task_time(service.knee)
        merge = self.merge_time(service.knee, 1.0)
        worst_batch = worst + merge
        close_margin = worst_batch * config.close_margin_factor
        if close_margin >= config.slo:
            raise ConfigurationError(
                f"SLO {config.slo:.6f}s cannot fit one knee batch "
                f"({worst_batch:.6f}s through the slowest shard); add data "
                f"nodes, shrink the knee, or relax the SLO"
            )
        drain_parallelism = max(
            1, config.total_slots // (config.shards * config.service_nodes)
        )
        self.service_nodes: List[ServiceNode] = []
        for index in range(config.service_nodes):
            admission = AdmissionController(
                AdmissionConfig.for_slo(
                    slo=config.slo,
                    worst_batch_time=worst_batch,
                    knee=service.knee,
                    replicas=drain_parallelism,
                    safety=config.safety,
                )
            )
            batcher = DeadlineBatcher(service, close_margin=close_margin)
            core = ServiceNodeCore(admission, batcher, DegradationLadder())
            cache = HotLabelCache(config.cache_capacity, config.cache_ttl)
            self.service_nodes.append(
                ServiceNode(index, config.service_rack(index), core, cache)
            )
        self.data_nodes: List[DataNode] = [
            DataNode(index, config.node_rack(index), config.slots_per_node)
            for index in range(config.data_nodes)
        ]
        self.autoscaler = Autoscaler(
            slo=config.slo,
            min_nodes=config.autoscale_min,
            max_nodes=config.service_nodes,
        )
        self._pressure_fallback = max(
            1, service.knee * max(1, config.total_slots // config.shards) * 4
        )

    # -- cost model -----------------------------------------------------------
    def shard_exec_time(
        self, shard: int, size: int, candidate_scale: float = 1.0
    ) -> float:
        """On-node execution cost of one shard task (no slowdowns)."""
        return self.service.batch_time(
            size,
            candidate_scale=candidate_scale * self.placement.hot_degrees[shard],
            work_fraction=1.0 / self.config.shards,
        )

    def merge_time(self, size: int, top_k_scale: float) -> float:
        """§7.1 cross-shard top-k merge cost at the service node."""
        effective_k = max(1, int(round(self.config.top_k * top_k_scale)))
        merge_bytes = size * effective_k * MERGE_ENTRY_BYTES * self.config.shards
        return merge_bytes / self.config.interconnect.bandwidth

    def result_bytes(self, size: int, top_k_scale: float) -> int:
        effective_k = max(1, int(round(self.config.top_k * top_k_scale)))
        return size * effective_k * MERGE_ENTRY_BYTES

    def worst_task_time(self, size: int) -> float:
        """Upper bound on one shard task: transfers + hottest-shard exec."""
        link = self.config.interconnect
        out = link.transfer_time(size * REQUEST_BYTES, cross_rack=True)
        back = link.transfer_time(self.result_bytes(size, 1.0), cross_rack=True)
        exec_worst = max(
            self.shard_exec_time(shard, size)
            for shard in range(self.config.shards)
        )
        return out + exec_worst * self.crawlers.mean_overhead() + back

    # -- the event loop -------------------------------------------------------
    def run(
        self,
        arrivals: Sequence[float],
        keys: Optional[np.ndarray] = None,
    ) -> ClusterReport:
        """Replay ``arrivals`` (sorted timestamps, seconds) to completion.

        ``keys`` optionally supplies each request's cache label-group key;
        by default they are drawn from the seeded Zipf stream
        (:func:`~repro.cluster.cache.zipf_keys`).  Raises
        :class:`~repro.errors.SimulationError` when conservation breaks or
        work is left behind.
        """
        times = np.asarray(arrivals, dtype=np.float64)
        if times.size == 0:
            raise WorkloadError("no arrivals to serve")
        if np.any(np.diff(times) < 0):
            raise WorkloadError("arrival times must be non-decreasing")
        num_requests = int(times.size)
        if keys is None:
            keys = zipf_keys(
                num_requests,
                self.config.cache_groups,
                self.config.cache_skew,
                self.seed,
            )
        if keys.shape[0] != num_requests:
            raise WorkloadError("cache keys must align with arrivals")

        config = self.config
        link = config.interconnect
        sns = self.service_nodes
        dns = self.data_nodes

        latencies = build_latency_array(num_requests)
        counters = FleetCounters()
        shed_by_reason: Dict[str, int] = {}
        timeline: List[FailoverEvent] = []
        owner: Dict[int, int] = {}  # queued request id -> service node
        live: Dict[int, ShardTask] = {}  # started task id -> task
        batches: Dict[int, BatchState] = {}
        parked: List[ShardTask] = []
        parked_since: Dict[int, float] = {}
        severed: Set[Tuple[int, int]] = set()
        active = [True] * len(sns)
        self._active_count = len(sns)
        peak_active = self._active_count
        alive_slots = sum(dn.slots for dn in dns)
        running_tasks = 0
        parked_time = 0.0
        last_completion = float(times[0])

        heap: List[Tuple[float, int, int, int]] = []
        seq = 0
        next_task_id = 0
        next_batch_id = 0

        # Fault-plan state edges (crash + partition; brownouts are queried
        # point-in-time at task start instead).
        edges: List[Tuple[float, int, object]] = [
            edge
            for edge in self.fault_plan.edges()
            if edge[1]
            in (EDGE_NODE_UP, EDGE_NODE_DOWN, EDGE_PARTITION_HEAL, EDGE_PARTITION_START)
        ]
        for index, edge in enumerate(edges):
            heapq.heappush(heap, (float(edge[0]), _KIND_EDGE, seq, index))
            seq += 1
        # Autoscaler evaluations, one per interval across the arrival span.
        if config.autoscale and len(sns) > 1:
            evaluations = int(float(times[-1]) / config.autoscale_interval)
            for step in range(1, evaluations + 1):
                heapq.heappush(
                    heap, (step * config.autoscale_interval, _KIND_SCALE, seq, 0)
                )
                seq += 1
        # Arrivals enter the heap one at a time (they are sorted), keeping
        # the heap at working-set size rather than run size.
        heapq.heappush(heap, (float(times[0]), _KIND_ARRIVAL, seq, 0))
        seq += 1

        registry = get_registry()
        tracer = get_tracer()
        recorder = self.digest_recorder
        sanitizer = get_sanitizer()
        collector = get_collector()

        def reachable(rack_a: int, rack_b: int) -> bool:
            if rack_a == rack_b or not severed:
                return True
            pair = (rack_a, rack_b) if rack_a <= rack_b else (rack_b, rack_a)
            return pair not in severed

        def start_on(node: DataNode, task: ShardTask, now: float) -> None:
            nonlocal seq, running_tasks
            start = now if now > task.ready_at else task.ready_at
            slow = self.fault_plan.slowdown(
                node.index, start
            ) * self.crawlers.slowdown(node.index, start)
            end = start + task.exec_time * slow
            task.started_at = start
            if collector.enabled:
                collector.on_task_start(
                    task.task_id, start, end, task.exec_time
                )
            node.start(task, end)
            live[task.task_id] = task
            running_tasks += 1
            heapq.heappush(heap, (end, _KIND_TASK, seq, task.task_id))
            seq += 1

        def route_task(task: ShardTask, now: float) -> bool:
            """Place ``task`` on a replica; False when parked."""
            sn_rack = sns[task.service_node].rack
            best_node: Optional[DataNode] = None
            best_key = (0, 0)
            for node_index in self.placement.nodes_for(task.shard):
                node = dns[node_index]
                if not node.alive or not reachable(sn_rack, node.rack):
                    continue
                key = (node.outstanding, node.index)
                if best_node is None or key < best_key:
                    best_key = key
                    best_node = node
            if best_node is None:
                parked.append(task)
                parked_since[task.task_id] = now
                counters.parked += 1
                timeline.append(
                    FailoverEvent(
                        time=now,
                        action="park",
                        shard=task.shard,
                        task_id=task.task_id,
                        from_node=task.node,
                        to_node=-1,
                    )
                )
                if collector.enabled:
                    collector.on_task_park(
                        task.task_id, task.batch_id, task.shard
                    )
                return False
            cross = sn_rack != best_node.rack
            task.ready_at = now + link.transfer_time(task.bytes_out, cross)
            task.node = best_node.index
            if collector.enabled:
                collector.on_task_route(
                    task.task_id,
                    task.batch_id,
                    task.shard,
                    task.exec_time,
                    now,
                    task.ready_at,
                    task.node,
                )
            if best_node.has_free_slot() and not best_node.pending:
                start_on(best_node, task, task.ready_at)
            else:
                best_node.pending.append(task)
            return True

        steal_policy = self.config.steal_policy

        def try_steal(node: DataNode, now: float) -> None:
            """Pull one queued task for a shard ``node`` replicates.

            ``config.steal_policy`` picks which end of the victim's FIFO to
            scan: ``newest`` (tail first — the victim keeps its oldest,
            soonest-to-run work), ``oldest`` (head first — FIFO fairness at
            the cost of re-shipping the request that waited longest), or
            ``none`` (stealing disabled; idle slots stay idle).
            """
            if steal_policy == "none":
                return
            if not node.alive or not node.has_free_slot() or node.pending:
                return
            my_shards = set(self.placement.shards_on(node.index))
            if not my_shards:
                return
            victims = sorted(
                (v for v in dns if v is not node and v.pending),
                key=lambda v: (-len(v.pending), v.index),
            )
            for victim in victims:
                if steal_policy == "newest":
                    positions = range(len(victim.pending) - 1, -1, -1)
                else:
                    positions = range(len(victim.pending))
                for position in positions:
                    task = victim.pending[position]
                    if task.shard not in my_shards:
                        continue
                    if not reachable(sns[task.service_node].rack, node.rack):
                        continue
                    del victim.pending[position]
                    task.stolen = True
                    node.steals += 1
                    counters.steals += 1
                    cross = sns[task.service_node].rack != node.rack
                    task.ready_at = now + link.transfer_time(
                        task.bytes_out, cross
                    )
                    task.node = node.index
                    if collector.enabled:
                        collector.on_task_route(
                            task.task_id,
                            task.batch_id,
                            task.shard,
                            task.exec_time,
                            now,
                            task.ready_at,
                            task.node,
                        )
                        collector.on_task_steal(task.task_id)
                    start_on(node, task, task.ready_at)
                    return

        def failover_task(task: ShardTask, now: float, from_node: int) -> None:
            task.node = from_node
            if route_task(task, now):
                if collector.enabled:
                    collector.on_task_redispatch(task.task_id)
                counters.redispatches += 1
                timeline.append(
                    FailoverEvent(
                        time=now,
                        action="redispatch",
                        shard=task.shard,
                        task_id=task.task_id,
                        from_node=from_node,
                        to_node=task.node,
                    )
                )
                if registry.enabled:
                    registry.counter(
                        "cluster_failovers_total",
                        "tasks redispatched or parked after a fault",
                    ).inc(action="redispatch")

        def retry_parked(now: float) -> None:
            nonlocal parked_time
            still_parked: List[ShardTask] = []
            for task in sorted(parked, key=lambda t: t.task_id):
                from_node = task.node
                task.node = -1
                sn_rack = sns[task.service_node].rack
                routable = any(
                    dns[n].alive and reachable(sn_rack, dns[n].rack)
                    for n in self.placement.nodes_for(task.shard)
                )
                if not routable:
                    task.node = from_node
                    still_parked.append(task)
                    continue
                route_task(task, now)
                parked_time += now - parked_since.pop(task.task_id)
                timeline.append(
                    FailoverEvent(
                        time=now,
                        action="unpark",
                        shard=task.shard,
                        task_id=task.task_id,
                        from_node=from_node,
                        to_node=task.node,
                    )
                )
            parked[:] = still_parked

        def dispatch(sn: ServiceNode, now: float) -> None:
            nonlocal seq, next_task_id, next_batch_id
            pressure = sn.core.pressure(
                sn.outstanding_requests, self._pressure_fallback
            )
            level = sn.core.dispatch_level(pressure)
            batch = sn.core.form_batch()
            if not batch:
                raise SimulationError("dispatch from an empty queue")
            size = len(batch)
            for request in batch:
                owner.pop(request.request_id, None)
            sn.outstanding_requests += size
            candidate_scale = sn.core.ladder.candidate_scale
            top_k_scale = sn.core.ladder.top_k_scale
            state = BatchState(
                batch_id=next_batch_id,
                service_node=sn.index,
                size=size,
                request_ids=tuple(r.request_id for r in batch),
                level=level,
                dispatch_time=now,
                remaining=config.shards,
            )
            state.merge_cost = self.merge_time(size, top_k_scale)
            batches[next_batch_id] = state
            if collector.enabled:
                collector.on_dispatch(
                    next_batch_id,
                    sn.index,
                    now,
                    level,
                    state.request_ids,
                    tuple(float(times[r]) for r in state.request_ids),
                )
            counters.batches += 1
            if registry.enabled:
                registry.counter(
                    "cluster_batches_total", "batches dispatched by the fleet"
                ).inc(service_node=sn.index, level=level)
            bytes_back = self.result_bytes(size, top_k_scale)
            for shard in range(config.shards):
                task = ShardTask(
                    task_id=next_task_id,
                    batch_id=next_batch_id,
                    shard=shard,
                    size=size,
                    service_node=sn.index,
                    exec_time=self.shard_exec_time(shard, size, candidate_scale),
                    bytes_out=size * REQUEST_BYTES,
                    bytes_back=bytes_back,
                )
                next_task_id += 1
                route_task(task, now)
            next_batch_id += 1

        def fleet_has_idle_capacity() -> bool:
            return running_tasks < alive_slots

        def drain(sn: ServiceNode, now: float) -> None:
            while sn.core.depth > 0:
                must = sn.core.should_close(now)
                eager = config.eager_when_idle and fleet_has_idle_capacity()
                if not (must or eager):
                    break
                dispatch(sn, now)

        def pick_service_node() -> ServiceNode:
            best: Optional[ServiceNode] = None
            best_key = (0, 0)
            for sn in sns:
                if not active[sn.index]:
                    continue
                key = (sn.core.pending(sn.outstanding_requests), sn.index)
                if best is None or key < best_key:
                    best_key = key
                    best = sn
            if best is None:
                raise SimulationError("no active service node to route to")
            return best

        while heap:
            now, kind, order, payload = heapq.heappop(heap)
            if sanitizer.enabled:
                sanitizer.observe_pop("cluster", now, key=(now, kind, order))
            if recorder is not None:
                recorder.tick(
                    now,
                    kind=kind,
                    completed=counters.completed,
                    shed=counters.shed,
                    cache_hits=counters.cache_hits,
                    tasks_done=counters.tasks_done,
                    steals=counters.steals,
                    running=running_tasks,
                    parked=len(parked),
                    batches=counters.batches,
                    active=self._active_count,
                    seq=seq,
                )
            if kind == _KIND_TASK:
                task = live.pop(payload, None)
                if task is None:
                    continue  # cancelled by a crash edge
                node = dns[task.node]
                node.finish(task.task_id, now - task.started_at)
                running_tasks -= 1
                counters.tasks_done += 1
                if node.pending:
                    while node.has_free_slot() and node.pending:
                        start_on(node, node.pending.popleft(), now)
                else:
                    try_steal(node, now)
                state = batches[task.batch_id]
                sn_rack = sns[state.service_node].rack
                cross = node.rack != sn_rack
                result_at = now + link.transfer_time(task.bytes_back, cross)
                if collector.enabled:
                    collector.on_task_finish(task.task_id, now, result_at)
                if result_at > state.last_result_at:
                    state.last_result_at = result_at
                state.remaining -= 1
                if state.remaining == 0:
                    merge_end = state.last_result_at + state.merge_cost
                    heapq.heappush(
                        heap, (merge_end, _KIND_MERGE, seq, state.batch_id)
                    )
                    seq += 1
            elif kind == _KIND_MERGE:
                state = batches.pop(payload)
                sn = sns[state.service_node]
                sn.outstanding_requests -= state.size
                for rid in state.request_ids:
                    latency = now - float(times[rid])
                    latencies[rid] = latency
                    self.autoscaler.observe(now, latency > config.slo)
                    sn.cache.insert(int(keys[rid]), now)
                counters.completed += state.size
                last_completion = now if now > last_completion else last_completion
                if tracer.enabled:
                    tracer.add_span(
                        f"batch{state.batch_id}",
                        state.dispatch_time,
                        now,
                        track=CLUSTER_TRACK,
                        attrs={
                            "size": state.size,
                            "level": state.level,
                            "service_node": state.service_node,
                        },
                    )
                if collector.enabled:
                    collector.on_merge(state.batch_id, now)
                drain(sn, now)
            elif kind == _KIND_CACHE:
                latency = now - float(times[payload])
                latencies[payload] = latency
                counters.completed += 1
                counters.cache_hits += 1
                if collector.enabled:
                    collector.on_cache_hit(payload, float(times[payload]), now)
                self.autoscaler.observe(now, latency > config.slo)
                last_completion = now if now > last_completion else last_completion
            elif kind == _KIND_DEADLINE:
                sn_index = owner.get(payload)
                if sn_index is not None and sns[sn_index].core.is_waiting(payload):
                    drain(sns[sn_index], now)
            elif kind == _KIND_ARRIVAL:
                arrival_time = float(times[payload])
                sn = pick_service_node()
                sn.arrived += 1
                if sn.cache.lookup(int(keys[payload]), now):
                    sn.cache_hits += 1
                    heapq.heappush(
                        heap,
                        (
                            now + config.cache_hit_time,
                            _KIND_CACHE,
                            seq,
                            payload,
                        ),
                    )
                    seq += 1
                else:
                    request = Request(
                        request_id=payload,
                        arrival=arrival_time,
                        deadline=arrival_time + config.slo,
                    )
                    reason = sn.core.offer(
                        request, sn.outstanding_requests, now
                    )
                    if registry.enabled:
                        registry.counter(
                            "cluster_requests_total",
                            "requests offered to the fleet",
                        ).inc(outcome="shed" if reason else "admitted")
                    if reason is not None:
                        sn.shed += 1
                        counters.shed += 1
                        shed_by_reason[reason] = (
                            shed_by_reason.get(reason, 0) + 1
                        )
                        if collector.enabled:
                            collector.on_shed(reason)
                        self.autoscaler.observe(now, True)
                    else:
                        owner[payload] = sn.index
                        heapq.heappush(
                            heap,
                            (
                                sn.core.close_time(request),
                                _KIND_DEADLINE,
                                seq,
                                payload,
                            ),
                        )
                        seq += 1
                        drain(sn, now)
                if payload + 1 < num_requests:
                    heapq.heappush(
                        heap,
                        (
                            float(times[payload + 1]),
                            _KIND_ARRIVAL,
                            seq,
                            payload + 1,
                        ),
                    )
                    seq += 1
            elif kind == _KIND_EDGE:
                _edge_time, edge_kind, edge_payload = edges[payload]
                if edge_kind == EDGE_NODE_DOWN:
                    down = dns[int(edge_payload)]
                    if down.alive:
                        down.alive = False
                        alive_slots -= down.slots
                        lost: List[ShardTask] = []
                        for task_id in sorted(down.running):
                            task = down.running[task_id]
                            live.pop(task_id, None)
                            running_tasks -= 1
                            if task.started_at < now:
                                down.busy_time += now - task.started_at
                            lost.append(task)
                        down.running.clear()
                        lost.extend(down.pending)
                        down.pending.clear()
                        for task in lost:
                            failover_task(task, now, down.index)
                elif edge_kind == EDGE_NODE_UP:
                    up = dns[int(edge_payload)]
                    # Another crash window may still cover this instant
                    # (overlapping windows share one node); stay down and
                    # let that window's own up-edge revive the node.
                    if not up.alive and self.fault_plan.node_alive(
                        up.index, now
                    ):
                        up.alive = True
                        alive_slots += up.slots
                        retry_parked(now)
                        try_steal(up, now)
                elif edge_kind == EDGE_PARTITION_START:
                    severed.add((edge_payload[0], edge_payload[1]))
                elif edge_kind == EDGE_PARTITION_HEAL:
                    pair = (edge_payload[0], edge_payload[1])
                    # Another window on the same rack pair may still cover
                    # this instant; its own heal edge lifts the severance.
                    if self.fault_plan.reachable(pair[0], pair[1], now):
                        severed.discard(pair)
                        retry_parked(now)
            else:  # _KIND_SCALE
                target = self.autoscaler.decide(now, self._active_count)
                if target > self._active_count:
                    for sn in sns:
                        if not active[sn.index]:
                            active[sn.index] = True
                            break
                    self._active_count += 1
                    counters.scale_ups += 1
                elif target < self._active_count:
                    for sn in reversed(sns):
                        if active[sn.index]:
                            active[sn.index] = False
                            break
                    self._active_count -= 1
                    counters.scale_downs += 1
                peak_active = max(peak_active, self._active_count)

        for sn in sns:
            sn.core.verify_drained()
            sn.core.admission.verify_conservation()
            if sn.outstanding_requests != 0:
                raise SimulationError(
                    f"service node {sn.index} ended with "
                    f"{sn.outstanding_requests} requests unmerged"
                )
        if live or batches or parked:
            raise SimulationError(
                f"cluster run ended with work left behind: {len(live)} tasks "
                f"running, {len(batches)} batches open, {len(parked)} parked"
            )
        if counters.completed + counters.shed != num_requests:
            raise SimulationError(
                f"fleet conservation violated: {counters.completed} completed "
                f"+ {counters.shed} shed != {num_requests} arrived"
            )
        makespan = last_completion - float(times[0])
        if recorder is not None:
            recorder.capture(
                last_completion,
                kind=-1,
                completed=counters.completed,
                shed=counters.shed,
                cache_hits=counters.cache_hits,
                tasks_done=counters.tasks_done,
                steals=counters.steals,
                running=0,
                parked=0,
                batches=counters.batches,
                active=self._active_count,
                seq=seq,
            )
        report = ClusterReport(
            config={
                "data_nodes": config.data_nodes,
                "service_nodes": config.service_nodes,
                "shards": config.shards,
                "replicas": config.replicas,
                "racks": config.racks,
                "slots_per_node": config.slots_per_node,
                "seed": self.seed,
            },
            slo=config.slo,
            arrived=num_requests,
            completed=counters.completed,
            shed=counters.shed,
            cache_hits=counters.cache_hits,
            latencies=latencies,
            tasks_done=counters.tasks_done,
            steals=counters.steals,
            redispatches=counters.redispatches,
            parked_events=counters.parked,
            parked_time=parked_time,
            batches=counters.batches,
            scale_ups=counters.scale_ups,
            scale_downs=counters.scale_downs,
            peak_active_service_nodes=peak_active,
            node_busy=[dn.busy_time for dn in dns],
            makespan=makespan,
            failover_timeline=timeline,
            shard_outages=shard_outage_seconds(self.fault_plan, self.placement),
            shed_by_reason=shed_by_reason,
        )
        logger.info(
            "fleet served %d/%d requests (%.1f%% shed, %.1f%% cached) across "
            "%d batches / %d tasks; %d steals, %d redispatches",
            counters.completed,
            num_requests,
            100.0 * report.shed_rate,
            100.0 * report.cache_hit_rate,
            counters.batches,
            counters.tasks_done,
            counters.steals,
            counters.redispatches,
        )
        return report


def build_cluster(
    service: AffineServiceModel,
    config: ClusterConfig,
    seed: int = 0,
    fault_config: Optional[ClusterFaultConfig] = None,
    hot_degrees: Optional[Sequence[float]] = None,
    digest_recorder: Optional[DigestRecorder] = None,
) -> ClusterSimulator:
    """Assemble placement, fault plan, crawlers, and nodes into one fleet."""
    degrees = (
        list(hot_degrees) if hot_degrees is not None else [1.0] * config.shards
    )
    placement = place_replicas(config, degrees)
    plan = ClusterFaultPlan.build(
        fault_config if fault_config is not None else ClusterFaultConfig.disabled(),
        nodes=config.data_nodes,
        racks=config.racks,
    )
    crawlers = CrawlerSchedule(seed, enabled=config.crawlers_enabled)
    return ClusterSimulator(
        service=service,
        config=config,
        placement=placement,
        fault_plan=plan,
        crawlers=crawlers,
        seed=seed,
        digest_recorder=digest_recorder,
    )


def cluster_saturating_rate(
    service: AffineServiceModel, config: ClusterConfig
) -> float:
    """Offered load (queries/s) at which the fleet's task slots saturate.

    Each knee-sized batch occupies ``shards`` slots for one worst-case task
    time; ``total_slots`` slots drain in parallel.  The bench's 1x point.
    """
    placement = place_replicas(config, [1.0] * config.shards)
    crawlers = CrawlerSchedule(0, enabled=config.crawlers_enabled)
    plan = ClusterFaultPlan.build(
        ClusterFaultConfig.disabled(), nodes=config.data_nodes, racks=config.racks
    )
    probe = ClusterSimulator(
        service=service,
        config=config,
        placement=placement,
        fault_plan=plan,
        crawlers=crawlers,
    )
    worst = probe.worst_task_time(service.knee)
    return config.total_slots * service.knee / (config.shards * worst)
