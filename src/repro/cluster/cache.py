"""Host-side hot-label result cache above the device DRAM screener tables.

Extreme-classification traffic is heavily head-skewed: a small set of
label *groups* (related query families hitting the same hot labels) absorbs
most requests.  Each service node therefore keeps a small LRU result cache
keyed by label group: a hit returns a recently computed top-k directly from
host DRAM, skipping admission, the data-node fan-out, and the merge — the
same hierarchy step the paper's DRAM screener table plays inside one
device, lifted to the fleet.

The cache is fully deterministic: LRU order is insertion/touch order on an
``OrderedDict``, expiry is simulated-time TTL, and the per-request group
keys are drawn once, at workload-build time, from the repo's seeded
``default_rng((seed, salt))`` idiom via :func:`zipf_keys`.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from ..errors import ConfigurationError

#: RNG salt for the request -> label-group key stream (one draw per run).
KEY_STREAM_SALT = 11


def zipf_keys(
    num_requests: int, groups: int, skew: float, seed: int
) -> np.ndarray:
    """Per-request label-group keys under a bounded Zipf(``skew``) law.

    Drawn in one vectorized pass from ``default_rng((seed, salt))`` so the
    key stream is bit-identical per seed and independent of arrival-time
    RNG state.
    """
    if num_requests <= 0:
        raise ConfigurationError("num_requests must be positive")
    if groups <= 0:
        raise ConfigurationError("groups must be positive")
    if skew <= 0:
        raise ConfigurationError("skew must be positive")
    weights = np.arange(1, groups + 1, dtype=np.float64) ** (-skew)
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    rng = np.random.default_rng((seed, KEY_STREAM_SALT))
    uniforms = rng.uniform(0.0, 1.0, size=num_requests)
    return np.searchsorted(cdf, uniforms, side="left").astype(np.int64)


class HotLabelCache:
    """Deterministic LRU + sim-time-TTL cache of per-group top-k results.

    ``capacity == 0`` disables the cache (every lookup misses, inserts are
    dropped), which makes a cache-less fleet bit-identical to one built
    without the cache at all.
    """

    def __init__(self, capacity: int, ttl: float) -> None:
        if capacity < 0:
            raise ConfigurationError("cache capacity cannot be negative")
        if ttl < 0:
            raise ConfigurationError("cache ttl cannot be negative")
        self.capacity = capacity
        self.ttl = ttl
        self._entries: "OrderedDict[int, float]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: int, now: float) -> bool:
        """True (and refresh LRU position) when ``key`` is fresh at ``now``."""
        inserted = self._entries.get(key)
        if inserted is None:
            self.misses += 1
            return False
        if now - inserted > self.ttl:
            # Expired: drop it so it cannot shadow a future insert.
            del self._entries[key]
            self.misses += 1
            return False
        self._entries.move_to_end(key)
        self.hits += 1
        return True

    def insert(self, key: int, now: float) -> None:
        """Record a freshly merged result for ``key`` (evicting LRU)."""
        if self.capacity == 0:
            return
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = now
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
