"""Fleet shape and the latency/bandwidth-modeled interconnect.

:class:`ClusterConfig` names every knob of a fleet deployment — how many
stateless service nodes front how many data nodes, how the label space is
sharded and replicated, which racks (fault domains) nodes live in, and the
host-side cache/autoscaler parameters.  :class:`Interconnect` prices the
network hops between them: a fixed per-message latency plus a
bandwidth-proportional transfer term, doubled across racks (one extra
switch hop in a two-tier topology).

Everything here is pure configuration and arithmetic — no state, no clock,
no randomness — so the same config prices the same byte the same way on
every run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..errors import ConfigurationError
from ..units import gbps, us

#: Bytes shipped per query from a service node to each data-node task (the
#: embedding vector plus framing).
REQUEST_BYTES = 512

#: Replica-placement strategies the placement engine can run (see
#: :func:`repro.cluster.placement.place_replicas`): ``rack-spread`` prefers
#: untaken racks (fault-domain first), ``locality-packed`` prefers racks the
#: shard already occupies (cheap intra-rack traffic, weaker fault spread),
#: ``hotness-weighted`` ignores racks and balances predicted heat alone.
PLACEMENT_STRATEGIES: Tuple[str, ...] = (
    "rack-spread",
    "locality-packed",
    "hotness-weighted",
)

#: Work-steal policies for idle data nodes (see
#: :meth:`repro.cluster.engine.ClusterSimulator`): steal the victim's
#: ``newest`` queued task (best cache locality for the victim's old work),
#: its ``oldest`` (FIFO fairness), or ``none`` (stealing disabled).
STEAL_POLICIES: Tuple[str, ...] = ("newest", "oldest", "none")


def rack_of(node: int, racks: int) -> int:
    """The rack (fault domain) hosting ``node`` — round-robin striping."""
    if racks <= 0:
        raise ConfigurationError("racks must be positive")
    if node < 0:
        raise ConfigurationError("node index cannot be negative")
    return node % racks


@dataclass(frozen=True)
class Interconnect:
    """Latency + bandwidth cost model for one network hop.

    ``cross_rack_factor`` multiplies the fixed latency when the endpoints
    sit in different racks (the extra spine hop); bandwidth is assumed
    symmetric and uncontended — congestion shows up in the simulator as
    data-node queueing, not link queueing.
    """

    latency: float = us(20.0)
    bandwidth: float = gbps(40.0)
    cross_rack_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ConfigurationError("interconnect latency cannot be negative")
        if self.bandwidth <= 0:
            raise ConfigurationError("interconnect bandwidth must be positive")
        if self.cross_rack_factor < 1.0:
            raise ConfigurationError("cross_rack_factor must be >= 1")

    def transfer_time(self, nbytes: int, cross_rack: bool) -> float:
        """Seconds to move ``nbytes`` over one hop."""
        if nbytes < 0:
            raise ConfigurationError("transfer size cannot be negative")
        latency = self.latency * (self.cross_rack_factor if cross_rack else 1.0)
        return latency + nbytes / self.bandwidth


@dataclass(frozen=True)
class ClusterConfig:
    """Shape of one fleet deployment, independent of the service model.

    ``replicas`` is the *total* number of shard-replica instances placed on
    data nodes (so ``replicas / shards`` is the mean replication factor);
    the placement engine spreads each shard's replicas across distinct
    nodes and racks.  ``slots_per_node`` is how many shard tasks one data
    node executes concurrently (its channel-level parallelism budget);
    further tasks queue FIFO on the node.
    """

    data_nodes: int
    service_nodes: int = 2
    shards: int = 4
    replicas: int = 8
    racks: int = 2
    slots_per_node: int = 2
    slo: float = 0.020
    top_k: int = 5
    safety: float = 0.75
    close_margin_factor: float = 1.05
    eager_when_idle: bool = True
    # -- host-side hot-label result cache -----------------------------------
    cache_capacity: int = 4096
    cache_ttl: float = 0.25
    cache_groups: int = 16384
    cache_skew: float = 1.1
    cache_hit_time: float = us(50.0)
    # -- elastic autoscaling -------------------------------------------------
    autoscale: bool = True
    autoscale_min: int = 1
    autoscale_interval: float = 0.05
    # -- background crawlers -------------------------------------------------
    crawlers_enabled: bool = True
    # -- sweepable fleet policies --------------------------------------------
    placement_strategy: str = "rack-spread"
    steal_policy: str = "newest"
    interconnect: Interconnect = Interconnect()

    def __post_init__(self) -> None:
        if self.data_nodes <= 0 or self.service_nodes <= 0:
            raise ConfigurationError("data_nodes and service_nodes must be positive")
        if self.shards <= 0:
            raise ConfigurationError("shards must be positive")
        if self.replicas < self.shards:
            raise ConfigurationError(
                f"{self.replicas} replicas cannot cover {self.shards} shards "
                f"(need at least one replica per shard)"
            )
        if self.racks <= 0:
            raise ConfigurationError("racks must be positive")
        if self.slots_per_node <= 0:
            raise ConfigurationError("slots_per_node must be positive")
        if self.slo <= 0:
            raise ConfigurationError("slo must be positive")
        if self.top_k <= 0:
            raise ConfigurationError("top_k must be positive")
        if not 0.0 < self.safety <= 1.0:
            raise ConfigurationError("safety must be in (0, 1]")
        if self.close_margin_factor < 1.0:
            raise ConfigurationError("close_margin_factor must be >= 1")
        if self.cache_capacity < 0 or self.cache_groups <= 0:
            raise ConfigurationError(
                "cache_capacity cannot be negative; cache_groups must be positive"
            )
        if self.cache_ttl < 0 or self.cache_hit_time < 0:
            raise ConfigurationError("cache timings cannot be negative")
        if self.cache_skew <= 0:
            raise ConfigurationError("cache_skew must be positive")
        if not 1 <= self.autoscale_min <= self.service_nodes:
            raise ConfigurationError(
                "autoscale_min must be in [1, service_nodes]"
            )
        if self.autoscale_interval <= 0:
            raise ConfigurationError("autoscale_interval must be positive")
        if self.placement_strategy not in PLACEMENT_STRATEGIES:
            raise ConfigurationError(
                f"unknown placement strategy {self.placement_strategy!r}; "
                f"expected one of {PLACEMENT_STRATEGIES}"
            )
        if self.steal_policy not in STEAL_POLICIES:
            raise ConfigurationError(
                f"unknown steal policy {self.steal_policy!r}; "
                f"expected one of {STEAL_POLICIES}"
            )

    @property
    def total_slots(self) -> int:
        """Concurrent shard tasks the whole fleet can execute."""
        return self.data_nodes * self.slots_per_node

    def node_rack(self, node: int) -> int:
        """The rack hosting data node ``node``."""
        if not 0 <= node < self.data_nodes:
            raise ConfigurationError(
                f"data node {node} out of range [0, {self.data_nodes})"
            )
        return rack_of(node, self.racks)

    def service_rack(self, service_node: int) -> int:
        """The rack a service node is attached to (striped like data nodes)."""
        if not 0 <= service_node < self.service_nodes:
            raise ConfigurationError(
                f"service node {service_node} out of range "
                f"[0, {self.service_nodes})"
            )
        return rack_of(service_node, self.racks)
