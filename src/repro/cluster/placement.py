"""Hotness-aware, rack-spread replica placement for label shards.

The placement engine answers one question at cluster-build time: *which
data nodes host a replica of which label shard?*  Three pressures shape the
answer, in priority order:

1. **Coverage** — every shard gets at least one replica; extra replica
   budget (``config.replicas - config.shards``) goes to the hottest shards
   first (§5.3 hot-degree prediction), because they draw the most traffic.
2. **Rack preference** — governed by ``config.placement_strategy``:

   * ``rack-spread`` (default) — a shard's replicas land on distinct nodes
     and, while possible, distinct racks, so one node crash or one rack
     partition never takes out every copy (the failover protocol in
     :mod:`repro.cluster.engine` depends on this);
   * ``locality-packed`` — the inverse preference: replicas pack into racks
     the shard already occupies, trading fault spread for cheap intra-rack
     failover and steal traffic;
   * ``hotness-weighted`` — rack-blind; only predicted heat decides.
3. **Load balance** — among candidates tied on the rack term, the node with
   the least *predicted heat* (sum over hosted shards of
   ``hot_degree / replication_factor``) wins, index as the tie-break.

The strategies exist as sweep axes for the ablation engine
(:mod:`repro.ablate`); the fleet-policy campaign scores them against each
other under a shared fault plan.  The whole computation is a deterministic
fold over sorted inputs: same config and hot degrees, same placement, every
run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..errors import ConfigurationError
from .topology import ClusterConfig


@dataclass(frozen=True)
class Placement:
    """The materialized shard -> data-node replica map.

    ``assignments[shard]`` is the sorted list of data nodes hosting a
    replica of ``shard``; ``hosted[node]`` the sorted list of shards a node
    carries.  Both views are kept because the engine routes by shard while
    work stealing scans by node.
    """

    assignments: Tuple[Tuple[int, ...], ...]
    hosted: Tuple[Tuple[int, ...], ...]
    hot_degrees: Tuple[float, ...]

    def nodes_for(self, shard: int) -> Tuple[int, ...]:
        """Data nodes hosting a replica of ``shard`` (sorted)."""
        if not 0 <= shard < len(self.assignments):
            raise ConfigurationError(f"shard {shard} has no placement entry")
        return self.assignments[shard]

    def shards_on(self, node: int) -> Tuple[int, ...]:
        """Shards replicated on data node ``node`` (sorted)."""
        if not 0 <= node < len(self.hosted):
            raise ConfigurationError(f"node {node} has no placement entry")
        return self.hosted[node]

    @property
    def total_replicas(self) -> int:
        return sum(len(nodes) for nodes in self.assignments)

    def replication_factor(self, shard: int) -> int:
        return len(self.nodes_for(shard))

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe summary (sorted keys, no wall-clock content)."""
        return {
            "assignments": [list(nodes) for nodes in self.assignments],
            "replication": [len(nodes) for nodes in self.assignments],
            "hot_degrees": list(self.hot_degrees),
        }


def _replica_counts(
    shards: int, replicas: int, hot_degrees: Sequence[float]
) -> List[int]:
    """Replicas per shard: one each, extras to the hottest shards first."""
    counts = [1] * shards
    extras = replicas - shards
    # Hottest shards first; shard index breaks exact-heat ties.
    order = sorted(range(shards), key=lambda s: (-hot_degrees[s], s))
    position = 0
    while extras > 0:
        counts[order[position % shards]] += 1
        position += 1
        extras -= 1
    return counts


def place_replicas(
    config: ClusterConfig, hot_degrees: Sequence[float]
) -> Placement:
    """Assign every shard's replicas to data nodes (see module docstring).

    Raises :class:`~repro.errors.ConfigurationError` when a shard needs
    more replicas than there are data nodes (replicas of one shard must
    live on distinct nodes, or they are not replicas at all).
    """
    if len(hot_degrees) != config.shards:
        raise ConfigurationError(
            f"{len(hot_degrees)} hot degrees for {config.shards} shards"
        )
    if any(degree <= 0 for degree in hot_degrees):
        raise ConfigurationError("hot degrees must be positive")
    counts = _replica_counts(config.shards, config.replicas, hot_degrees)
    max_count = max(counts)
    if max_count > config.data_nodes:
        raise ConfigurationError(
            f"shard needs {max_count} replicas but only "
            f"{config.data_nodes} data nodes exist; add nodes or shrink "
            f"the replica budget"
        )
    heat: List[float] = [0.0] * config.data_nodes
    assignments: List[List[int]] = [[] for _ in range(config.shards)]
    strategy = config.placement_strategy
    # Hottest shards place first so they get the pick of cold nodes.
    order = sorted(range(config.shards), key=lambda s: (-hot_degrees[s], s))
    for shard in order:
        per_replica_heat = hot_degrees[shard] / counts[shard]
        for _ in range(counts[shard]):
            taken = set(assignments[shard])
            racks_taken = {config.node_rack(n) for n in taken}
            best_key: Tuple[int, float, int] = (0, 0.0, 0)
            best_node = -1
            for node in range(config.data_nodes):
                if node in taken:
                    continue
                in_taken_rack = config.node_rack(node) in racks_taken
                if strategy == "rack-spread":
                    rack_term = 1 if in_taken_rack else 0
                elif strategy == "locality-packed":
                    rack_term = 0 if in_taken_rack else 1
                else:  # hotness-weighted: rack-blind
                    rack_term = 0
                key = (rack_term, heat[node], node)
                if best_node < 0 or key < best_key:
                    best_key = key
                    best_node = node
            assignments[shard].append(best_node)
            heat[best_node] += per_replica_heat
    hosted: List[List[int]] = [[] for _ in range(config.data_nodes)]
    for shard in range(config.shards):
        assignments[shard].sort()
        for node in assignments[shard]:
            hosted[node].append(shard)
    for shards_list in hosted:
        shards_list.sort()
    return Placement(
        assignments=tuple(tuple(nodes) for nodes in assignments),
        hosted=tuple(tuple(shards_list) for shards_list in hosted),
        hot_degrees=tuple(float(d) for d in hot_degrees),
    )
