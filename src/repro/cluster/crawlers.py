"""Background crawlers: scrub, remap, and rebalance sharing the channels.

A production data node never serves foreground traffic alone — background
scrub (media health, :mod:`repro.faults.scrub`), remap (wear-leveling
migration), and rebalance (placement drift repair) crawls continuously walk
the flash and steal channel time.  Rather than simulating each crawl I/O,
the cluster layer prices their *interference*: during a crawler's duty
window, every foreground task on that node runs ``factor`` times slower
(the crawl occupies a fraction of the channel budget).

Windows are strictly periodic per (node, crawler) with a phase drawn from
:func:`repro.faults.hash_uniform` — an order-independent hash, not RNG
state — so the schedule is a pure function of (seed, node) and two runs
never disagree about whether a crawl covered a given instant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..errors import ConfigurationError
from ..faults import hash_uniform

#: Hash salts, one per crawler kind (distinct from the fault-plan salts).
_SALT_SCRUB = 21
_SALT_REMAP = 22
_SALT_REBALANCE = 23


@dataclass(frozen=True)
class CrawlerKind:
    """One background crawler's period, duty cycle, and interference."""

    name: str
    period: float
    duty: float  # fraction of each period the crawl is active
    factor: float  # foreground slowdown multiplier while active
    salt: int

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ConfigurationError("crawler period must be positive")
        if not 0.0 <= self.duty <= 1.0:
            raise ConfigurationError("crawler duty must be in [0, 1]")
        if self.factor < 1.0:
            raise ConfigurationError("crawler factor must be >= 1")

    def active(self, node: int, seed: int, time: float) -> bool:
        """Whether this crawl covers ``time`` on ``node``."""
        if self.duty <= 0.0:
            return False
        phase = hash_uniform(node, seed, salt=self.salt) * self.period
        position = (time + phase) % self.period
        return position < self.duty * self.period


#: The default crawler mix: a slow scrub sweep, a faster remap pass, and an
#: occasional rebalance, each stealing a modest slice of channel time.
DEFAULT_CRAWLERS: Tuple[CrawlerKind, ...] = (
    CrawlerKind(name="scrub", period=2.0, duty=0.20, factor=1.10, salt=_SALT_SCRUB),
    CrawlerKind(name="remap", period=0.5, duty=0.10, factor=1.15, salt=_SALT_REMAP),
    CrawlerKind(
        name="rebalance", period=5.0, duty=0.05, factor=1.25, salt=_SALT_REBALANCE
    ),
)


class CrawlerSchedule:
    """Per-node deterministic background-crawl interference schedule."""

    def __init__(
        self,
        seed: int,
        enabled: bool = True,
        crawlers: Tuple[CrawlerKind, ...] = DEFAULT_CRAWLERS,
    ) -> None:
        self.seed = seed
        self.enabled = enabled
        self.crawlers = crawlers

    def slowdown(self, node: int, time: float) -> float:
        """Foreground slowdown multiplier on ``node`` at ``time`` (>= 1)."""
        if not self.enabled:
            return 1.0
        factor = 1.0
        for crawler in self.crawlers:
            if crawler.active(node, self.seed, time):
                factor *= crawler.factor
        return factor

    def mean_overhead(self) -> float:
        """Expected long-run slowdown (duty-weighted product of factors)."""
        if not self.enabled:
            return 1.0
        overhead = 1.0
        for crawler in self.crawlers:
            overhead *= 1.0 + crawler.duty * (crawler.factor - 1.0)
        return overhead
