"""Fleet-scale cluster simulation: service nodes, data nodes, failover.

The ECSSD paper evaluates one computational-SSD deployment; a production
extreme-classification service runs *fleets* of them.  This package layers
a deterministic multi-node simulator above :mod:`repro.serve`: stateless
**service nodes** (the single-deployment admission / deadline-batching /
degradation machinery, one :class:`~repro.serve.node.ServiceNodeCore` per
node, plus a host-side hot-label result cache) fan shard tasks over
replicated **data nodes** (ECSSD devices behind channel-parallel task
slots) across a latency/bandwidth-modeled interconnect with rack fault
domains.

Around that core: a hotness-aware replica :mod:`placement <repro.cluster.placement>`
engine that spreads each shard across nodes and racks, burn-rate-driven
:mod:`autoscaling <repro.cluster.autoscale>` of the service plane,
node-crash / interconnect-partition / slow-node fault injection replayed
from :class:`~repro.faults.ClusterFaultPlan`, replica **failover** with a
byte-comparable timeline, cross-node **work stealing**, and background
:mod:`crawler <repro.cluster.crawlers>` interference (scrub / remap /
rebalance).  Everything runs on one event heap with total tie-ordering, so
a million-request run is bit-identical per seed — the ``repro cluster``
CLI and ``tests/test_cluster.py`` hold it to that.
"""

from .autoscale import SCALE_DOWN_FRACTION, Autoscaler
from .cache import HotLabelCache, zipf_keys
from .crawlers import DEFAULT_CRAWLERS, CrawlerKind, CrawlerSchedule
from .engine import ClusterSimulator, build_cluster, cluster_saturating_rate
from .nodes import BatchState, DataNode, FleetCounters, ServiceNode, ShardTask
from .placement import Placement, place_replicas
from .report import (
    LATENCY_UNSET,
    ClusterReport,
    FailoverEvent,
    build_latency_array,
    failover_timeline_digest,
    shard_outage_seconds,
)
from .topology import (
    PLACEMENT_STRATEGIES,
    REQUEST_BYTES,
    STEAL_POLICIES,
    ClusterConfig,
    Interconnect,
    rack_of,
)

__all__ = [
    "Autoscaler",
    "SCALE_DOWN_FRACTION",
    "HotLabelCache",
    "zipf_keys",
    "CrawlerKind",
    "CrawlerSchedule",
    "DEFAULT_CRAWLERS",
    "ClusterSimulator",
    "build_cluster",
    "cluster_saturating_rate",
    "BatchState",
    "DataNode",
    "FleetCounters",
    "ServiceNode",
    "ShardTask",
    "Placement",
    "place_replicas",
    "ClusterReport",
    "FailoverEvent",
    "LATENCY_UNSET",
    "build_latency_array",
    "failover_timeline_digest",
    "shard_outage_seconds",
    "ClusterConfig",
    "Interconnect",
    "PLACEMENT_STRATEGIES",
    "REQUEST_BYTES",
    "STEAL_POLICIES",
    "rack_of",
]
