"""Node state for the fleet simulator: service nodes and data nodes.

A **service node** is the stateless request plane: it owns one
:class:`~repro.serve.node.ServiceNodeCore` (the exact admission /
deadline-batching / degradation machinery the single-deployment driver
uses) plus a :class:`~repro.cluster.cache.HotLabelCache`, and tracks its
own in-flight request count so admission sees true pending depth.

A **data node** is the storage plane: it wraps one ECSSD device's service
model behind ``slots`` concurrent task slots (channel-level parallelism)
and a FIFO overflow queue.  The node holds *state only* — who is running,
who is queued, how much busy time accrued; all timing decisions live in
the engine so the event order stays on one heap.

:class:`ShardTask` is the unit of fan-out work: one shard's slice of one
batch, shipped from a service node to a data-node replica.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Tuple

from ..errors import SimulationError
from ..serve.node import ServiceNodeCore
from .cache import HotLabelCache


@dataclass
class ShardTask:
    """One shard's slice of one batch, in flight to or on a data node.

    ``exec_time`` is the on-node execution cost *excluding* slowdowns (the
    engine applies brownout and crawler factors at start time, when they
    are knowable); ``end`` is set once the task actually starts.
    """

    task_id: int
    batch_id: int
    shard: int
    size: int
    service_node: int
    exec_time: float
    bytes_out: int
    bytes_back: int
    node: int = -1  # data node currently responsible (-1 = unassigned)
    ready_at: float = 0.0  # when the request bytes land on the node
    started_at: float = -1.0  # slot-occupancy start (-1 = not started)
    end: float = -1.0  # slot-release time once started (-1 = not started)
    stolen: bool = False


@dataclass
class BatchState:
    """One dispatched batch awaiting its shard tasks and merge."""

    batch_id: int
    service_node: int
    size: int
    request_ids: Tuple[int, ...]
    level: int
    dispatch_time: float
    remaining: int
    merge_cost: float = 0.0  # §7.1 top-k merge time once all shards land
    last_result_at: float = 0.0  # max over shard tasks of result arrival


class ServiceNode:
    """One stateless frontend: admission + batching + degrade + cache."""

    def __init__(
        self, index: int, rack: int, core: ServiceNodeCore, cache: HotLabelCache
    ) -> None:
        self.index = index
        self.rack = rack
        self.core = core
        self.cache = cache
        self.active = True
        self.outstanding_requests = 0  # dispatched, not yet merged
        self.arrived = 0
        self.shed = 0
        self.cache_hits = 0

    @property
    def depth(self) -> int:
        return self.core.depth


class DataNode:
    """One storage backend: ``slots`` concurrent tasks + a FIFO queue."""

    def __init__(self, index: int, rack: int, slots: int) -> None:
        if slots <= 0:
            raise SimulationError("data node needs at least one task slot")
        self.index = index
        self.rack = rack
        self.slots = slots
        self.alive = True
        self.running: Dict[int, ShardTask] = {}
        self.pending: Deque[ShardTask] = deque()
        self.busy_time = 0.0
        self.tasks_done = 0
        self.steals = 0

    @property
    def outstanding(self) -> int:
        """Tasks this node is responsible for (running + queued)."""
        return len(self.running) + len(self.pending)

    def has_free_slot(self) -> bool:
        return len(self.running) < self.slots

    def start(self, task: ShardTask, end: float) -> None:
        """Occupy a slot with ``task`` until ``end``."""
        if not self.has_free_slot():
            raise SimulationError(
                f"data node {self.index} has no free slot for task {task.task_id}"
            )
        task.node = self.index
        task.end = end
        self.running[task.task_id] = task

    def finish(self, task_id: int, exec_spent: float) -> ShardTask:
        """Release the slot held by ``task_id``, accruing busy time."""
        task = self.running.pop(task_id, None)
        if task is None:
            raise SimulationError(
                f"data node {self.index} finishing unknown task {task_id}"
            )
        self.busy_time += exec_spent
        self.tasks_done += 1
        return task


@dataclass
class FleetCounters:
    """The engine's integer counters, digested every event pop."""

    completed: int = 0
    shed: int = 0
    cache_hits: int = 0
    tasks_done: int = 0
    steals: int = 0
    redispatches: int = 0
    parked: int = 0
    scale_ups: int = 0
    scale_downs: int = 0
    batches: int = 0
    extra: Dict[str, int] = field(default_factory=dict)
