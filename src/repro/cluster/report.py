"""The fleet-level run outcome: :class:`ClusterReport` and its timeline.

Distinct from :class:`repro.core.scaleout.ClusterReport` (one inference
pass across the devices of a single deployment): this report aggregates a
whole *fleet serving run* — millions of requests over service nodes, data
nodes, failures, and failovers — into the quantities the ``repro cluster``
CLI prints and ``benchmarks/test_cluster.py`` gates:

* goodput, shed rate, cache hit rate, and latency percentiles vs the SLO;
* the **failover timeline** (every park / redispatch / unpark decision, in
  event order — the determinism tests compare it byte-for-byte across
  runs) plus the analytic per-shard outage time;
* work-stealing volume and per-node utilization skew.

Latency samples live in one numpy array indexed by request id, so a
million-request run costs megabytes, not gigabytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import SimulationError, WorkloadError
from ..faults.plan import ClusterFaultPlan
from .placement import Placement

#: Sentinel latency for requests that never completed (shed); percentile
#: math masks these out.
LATENCY_UNSET = -1.0


@dataclass(frozen=True)
class FailoverEvent:
    """One failover decision, in event order.

    ``action`` is ``"redispatch"`` (task moved to a surviving replica),
    ``"park"`` (no routable replica — task held), or ``"unpark"`` (a held
    task found a home after recovery).
    """

    time: float
    action: str
    shard: int
    task_id: int
    from_node: int
    to_node: int  # -1 while parked

    def to_dict(self) -> Dict[str, object]:
        return {
            "time_s": self.time,
            "action": self.action,
            "shard": self.shard,
            "task_id": self.task_id,
            "from_node": self.from_node,
            "to_node": self.to_node,
        }


def shard_outage_seconds(
    plan: ClusterFaultPlan, placement: Placement
) -> List[float]:
    """Per-shard seconds during which *no* replica's node was alive.

    Computed analytically from the fault plan and the placement: for each
    shard, the intersection of its host nodes' crash windows.  Nonzero only
    when a crash schedule manages to hit every replica of a shard at once —
    the quantity the rack-spread placement exists to keep at zero.
    """
    outages: List[float] = []
    for shard in range(len(placement.assignments)):
        hosts = placement.nodes_for(shard)
        edges: List[float] = []
        for window in plan.crashes:
            if window.node in hosts:
                edges.append(window.start)
                edges.append(window.end)
        if not edges:
            outages.append(0.0)
            continue
        points = sorted(set(edges))
        total = 0.0
        for left, right in zip(points, points[1:]):
            midpoint = (left + right) / 2.0
            if all(not plan.node_alive(node, midpoint) for node in hosts):
                total += right - left
        outages.append(total)
    return outages


@dataclass
class ClusterReport:
    """Aggregate outcome of one fleet serving run (see module docstring)."""

    config: Dict[str, object]
    slo: float
    arrived: int
    completed: int
    shed: int
    cache_hits: int
    latencies: np.ndarray
    tasks_done: int
    steals: int
    redispatches: int
    parked_events: int
    parked_time: float
    batches: int
    scale_ups: int
    scale_downs: int
    peak_active_service_nodes: int
    node_busy: List[float]
    makespan: float
    failover_timeline: List[FailoverEvent] = field(default_factory=list)
    shard_outages: List[float] = field(default_factory=list)
    shed_by_reason: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.completed + self.shed != self.arrived:
            raise SimulationError(
                f"fleet conservation violated: {self.completed} completed + "
                f"{self.shed} shed != {self.arrived} arrived"
            )

    def _samples(self) -> np.ndarray:
        mask = self.latencies > LATENCY_UNSET
        return self.latencies[mask]

    def percentile(self, q: float) -> float:
        samples = self._samples()
        if samples.size == 0:
            raise WorkloadError(
                "cluster report has no completed requests; "
                "percentiles are undefined (everything was shed?)"
            )
        if not 0.0 <= q <= 100.0:
            raise WorkloadError(f"percentile must be in [0, 100], got {q}")
        return float(np.percentile(samples, q))

    @property
    def p50(self) -> float:
        return self.percentile(50.0)

    @property
    def p95(self) -> float:
        return self.percentile(95.0)

    @property
    def p99(self) -> float:
        return self.percentile(99.0)

    @property
    def p999(self) -> float:
        return self.percentile(99.9)

    @property
    def shed_rate(self) -> float:
        return self.shed / self.arrived if self.arrived else 0.0

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / self.arrived if self.arrived else 0.0

    @property
    def slo_attainment(self) -> float:
        samples = self._samples()
        if samples.size == 0:
            return 0.0
        return float(np.mean(samples <= self.slo))

    @property
    def goodput(self) -> float:
        """Requests completed within the SLO per simulated second."""
        if self.makespan <= 0.0:
            return 0.0
        samples = self._samples()
        good = int(np.sum(samples <= self.slo))
        return good / self.makespan

    @property
    def steal_rate(self) -> float:
        return self.steals / self.tasks_done if self.tasks_done else 0.0

    @property
    def failover_downtime(self) -> float:
        """Total analytic shard-outage seconds (0 when placement held)."""
        return float(sum(self.shard_outages))

    def utilization(self) -> List[float]:
        if self.makespan <= 0.0:
            return [0.0] * len(self.node_busy)
        return [busy / self.makespan for busy in self.node_busy]

    @property
    def utilization_skew(self) -> float:
        """Max over mean per-node utilization (1.0 = perfectly balanced)."""
        usage = self.utilization()
        if not usage:
            return 0.0
        mean = sum(usage) / len(usage)
        if mean <= 0.0:
            return 0.0
        return max(usage) / mean

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe summary (the ``repro cluster --out`` payload)."""
        has_samples = bool(self._samples().size)
        return {
            "config": dict(self.config),
            "slo_s": self.slo,
            "arrived": self.arrived,
            "completed": self.completed,
            "shed": self.shed,
            "shed_rate": self.shed_rate,
            "shed_by_reason": dict(sorted(self.shed_by_reason.items())),
            "cache_hits": self.cache_hits,
            "cache_hit_rate": self.cache_hit_rate,
            "goodput_qps": self.goodput,
            "slo_attainment": self.slo_attainment,
            "p50_s": self.p50 if has_samples else None,
            "p95_s": self.p95 if has_samples else None,
            "p99_s": self.p99 if has_samples else None,
            "p999_s": self.p999 if has_samples else None,
            "makespan_s": self.makespan,
            "batches": self.batches,
            "tasks_done": self.tasks_done,
            "steals": self.steals,
            "steal_rate": self.steal_rate,
            "redispatches": self.redispatches,
            "parked_events": self.parked_events,
            "parked_time_s": self.parked_time,
            "failover_downtime_s": self.failover_downtime,
            "failover_events": [e.to_dict() for e in self.failover_timeline],
            "shard_outages_s": list(self.shard_outages),
            "scale_ups": self.scale_ups,
            "scale_downs": self.scale_downs,
            "peak_active_service_nodes": self.peak_active_service_nodes,
            "node_utilization": self.utilization(),
            "utilization_skew": self.utilization_skew,
        }


def build_latency_array(num_requests: int) -> np.ndarray:
    """A request-indexed latency array initialized to the unset sentinel."""
    if num_requests <= 0:
        raise WorkloadError("num_requests must be positive")
    array = np.empty(num_requests, dtype=np.float64)
    array.fill(LATENCY_UNSET)
    return array


def failover_timeline_digest(
    timeline: Sequence[FailoverEvent], plan: Optional[ClusterFaultPlan] = None
) -> Tuple[int, int, int]:
    """Compact (redispatch, park, unpark) counts for quick comparisons."""
    redispatch = sum(1 for e in timeline if e.action == "redispatch")
    park = sum(1 for e in timeline if e.action == "park")
    unpark = sum(1 for e in timeline if e.action == "unpark")
    return redispatch, park, unpark
