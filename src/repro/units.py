"""Unit helpers and conversions used across the simulator.

Everything in the timing model is expressed in SI base units internally:
seconds for time, bytes for sizes, bytes/second for bandwidth, and
operations/second for compute throughput.  These helpers keep the call sites
readable (``4 * KiB``, ``gbps(1.0)``) and centralize the binary/decimal
convention: storage capacities use binary prefixes (KiB/MiB/GiB/TiB) while
bandwidths use the decimal convention the paper quotes (1 GB/s = 1e9 B/s).
"""

from __future__ import annotations

# --- Binary size prefixes (capacities) -------------------------------------
KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB
TiB = 1024 * GiB

# --- Decimal prefixes (bandwidths, rates) -----------------------------------
KB = 1_000
MB = 1_000_000
GB = 1_000_000_000
TB = 1_000_000_000_000

# --- Time -------------------------------------------------------------------
SECOND = 1.0
MILLISECOND = 1e-3
MICROSECOND = 1e-6
NANOSECOND = 1e-9


def gbps(value: float) -> float:
    """Bandwidth in GB/s (decimal) expressed in bytes/second."""
    return value * GB


def mbps(value: float) -> float:
    """Bandwidth in MB/s (decimal) expressed in bytes/second."""
    return value * MB


def gflops(value: float) -> float:
    """Compute throughput in GFLOPS expressed in FLOP/s."""
    return value * 1e9


def gops(value: float) -> float:
    """Compute throughput in GOPS expressed in ops/s."""
    return value * 1e9


def us(value: float) -> float:
    """Microseconds expressed in seconds."""
    return value * MICROSECOND


def ms(value: float) -> float:
    """Milliseconds expressed in seconds."""
    return value * MILLISECOND


def ns(value: float) -> float:
    """Nanoseconds expressed in seconds."""
    return value * NANOSECOND


def transfer_time(num_bytes: float, bandwidth_bps: float) -> float:
    """Time in seconds to move ``num_bytes`` over a ``bandwidth_bps`` link.

    Zero bytes take zero time; a zero-bandwidth link with nonzero payload is a
    configuration error surfaced as ``ValueError`` rather than ``inf`` so that
    broken configs fail loudly in tests.
    """
    if num_bytes < 0:
        raise ValueError(f"negative transfer size: {num_bytes}")
    if num_bytes == 0:
        return 0.0
    if bandwidth_bps <= 0:
        raise ValueError(f"non-positive bandwidth: {bandwidth_bps}")
    return num_bytes / bandwidth_bps


def compute_time(num_ops: float, throughput_ops: float) -> float:
    """Time in seconds to execute ``num_ops`` at ``throughput_ops`` ops/s."""
    if num_ops < 0:
        raise ValueError(f"negative op count: {num_ops}")
    if num_ops == 0:
        return 0.0
    if throughput_ops <= 0:
        raise ValueError(f"non-positive throughput: {throughput_ops}")
    return num_ops / throughput_ops


def pretty_bytes(num_bytes: float) -> str:
    """Human-readable byte count using binary prefixes (``1.5 GiB``)."""
    value = float(num_bytes)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB", "PiB"):
        if abs(value) < 1024 or unit == "PiB":
            return f"{value:.4g} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024
    raise AssertionError("unreachable")


def pretty_time(seconds: float) -> str:
    """Human-readable duration (``1.23 ms``, ``45.6 us``)."""
    if seconds == 0:
        return "0 s"
    for threshold, scale, unit in (
        (1.0, 1.0, "s"),
        (MILLISECOND, 1e3, "ms"),
        (MICROSECOND, 1e6, "us"),
        (0.0, 1e9, "ns"),
    ):
        if abs(seconds) >= threshold:
            return f"{seconds * scale:.4g} {unit}"
    raise AssertionError("unreachable")
