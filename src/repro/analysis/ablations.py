"""Ablation studies for the design choices DESIGN.md calls out.

These go beyond the paper's figures: each sweeps one design axis with
everything else fixed, quantifying *why* the headline results look the way
they do.

* :func:`interleaving_variants` — sequential / uniform / graded (the literal
  three-grade Fig. 7 scheme) / learned-LPT channel balance on the same tiles;
* :func:`predictor_fidelity_sweep` — how good must the |INT4|-sum predictor
  be before learned interleaving pays off;
* :func:`training_queries_sweep` — how much fine-tuning data the framework
  needs (§5.3's "frequency on the training dataset");
* :func:`channel_count_sweep` — device scaling: 2..16 flash channels;
* :func:`drift_study` — balance decay of a stale placement as query hotness
  drifts, and what re-tuning recovers;
* :func:`scheduler_study` — FIFO vs die-round-robin channel scheduling (the
  measured component of the interference penalty);
* :func:`deployment_study` — the §4.5 data-preparation period per benchmark;
* :func:`energy_study` — per-query energy for ECSSD vs every baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..baselines import (
    CPU_AP,
    CPU_N,
    GENSTORE_AP,
    GENSTORE_N,
    SMARTSSD_AP,
    SMARTSSD_H_AP,
    SMARTSSD_H_N,
    SMARTSSD_N,
)
from ..config import ECSSDConfig
from ..core.ecssd import ECSSDevice
from ..core.deployment import DeploymentModel, DeploymentTiming
from ..core.pipeline import PipelineFeatures
from ..errors import WorkloadError
from ..layout.graded import GradedInterleaving
from ..layout.learned import HotnessPredictor, LearnedInterleaving
from ..layout.placement import WeightPlacement, build_placement
from ..layout.sequential import SequentialStoring
from ..layout.uniform import UniformInterleaving
from ..ssd.controller import CommandKind, FlashCommand, FlashController
from ..ssd.channel import Channel
from ..ssd.geometry import FlashGeometry, PhysicalAddress
from ..ssd.scheduler import compare_policies
from ..workloads.benchmarks import BenchmarkSpec, get_benchmark
from ..workloads.drift import placement_balance_under_drift
from ..workloads.traces import CandidateTraceGenerator, LabelHotnessModel
from .energy import DEVICE_POWER_W, EnergyPoint, baseline_energy, ecssd_energy
from .experiments import TRACE_PARAMS, _generator, _run_device

CHANNELS_DEFAULT = 8
TILE_DEFAULT = 1024


def _tile_setup(
    tile_vectors: int = TILE_DEFAULT,
    tiles: int = 8,
    seed: int = 3,
    candidate_ratio: float = 0.10,
):
    hotness = LabelHotnessModel(
        num_labels=tile_vectors * tiles,
        zipf_exponent=TRACE_PARAMS["zipf_exponent"],
        run_length=int(TRACE_PARAMS["run_length"]),
        seed=seed,
    )
    generator = CandidateTraceGenerator(
        hotness,
        candidate_ratio=candidate_ratio,
        query_noise=TRACE_PARAMS["query_noise"],
    )
    return generator


def _tile_predictor(
    generator: CandidateTraceGenerator,
    tile_index: int,
    tile_vectors: int,
    fidelity: float,
    train_queries: int,
) -> HotnessPredictor:
    abs_sums = generator.predictor_abs_sums(tile_index, tile_vectors, fidelity=fidelity)
    predictor = HotnessPredictor(abs_sums)
    if train_queries > 0:
        train = generator.tile_trace(
            tile_index, tile_vectors, num_queries=train_queries, seed=1
        )
        predictor.fine_tune(train.selection_frequency(), observations=train_queries)
    return predictor


def _balance(
    placement: WeightPlacement, generator, tile_index: int, tile_vectors: int, queries: int = 16
) -> tuple:
    trace = generator.tile_trace(tile_index, tile_vectors, num_queries=queries, seed=7)
    total_pages, total_max = 0, 0
    for candidates in trace.candidates:
        counts = placement.pages_per_channel(candidates)
        total_pages += int(counts.sum())
        total_max += int(counts.max())
    return total_pages, total_max


# --- interleaving variants ------------------------------------------------------


@dataclass
class VariantResult:
    strategy: str
    balance: float  # time-weighted channel utilization bound


def interleaving_variants(
    tiles: int = 8,
    tile_vectors: int = TILE_DEFAULT,
    channels: int = CHANNELS_DEFAULT,
) -> List[VariantResult]:
    """Channel balance of all four strategies on identical tiles."""
    generator = _tile_setup(tile_vectors=tile_vectors, tiles=tiles)
    strategies = ["sequential", "uniform", "graded", "learned"]
    totals: Dict[str, List[int]] = {s: [0, 0] for s in strategies}
    for t in range(tiles):
        predictor = _tile_predictor(
            generator, t, tile_vectors,
            fidelity=TRACE_PARAMS["predictor_fidelity"],
            train_queries=int(TRACE_PARAMS["train_queries"]),
        )
        built = {
            "sequential": None,  # whole tile on one channel
            "uniform": UniformInterleaving(),
            "graded": GradedInterleaving(predictor),
            "learned": LearnedInterleaving(predictor),
        }
        for name, strategy in built.items():
            if strategy is None:
                # Sequential: tile entirely within one channel's slab.
                counts_pages, counts_max = _sequential_balance(
                    generator, t, tile_vectors, channels
                )
            else:
                placement = build_placement(
                    strategy, tile_vectors, channels, 4096, 4096,
                    tile_vectors=tile_vectors,
                )
                counts_pages, counts_max = _balance(
                    placement, generator, t, tile_vectors
                )
            totals[name][0] += counts_pages
            totals[name][1] += counts_max
    return [
        VariantResult(
            strategy=name,
            balance=pages / (channels * peak) if peak else 1.0,
        )
        for name, (pages, peak) in totals.items()
    ]


def _sequential_balance(generator, tile_index, tile_vectors, channels) -> tuple:
    trace = generator.tile_trace(tile_index, tile_vectors, num_queries=16, seed=7)
    total_pages = 0
    total_max = 0
    for candidates in trace.candidates:
        pages = len(candidates)  # all on one channel
        total_pages += pages
        total_max += pages
    return total_pages, total_max


# --- predictor fidelity sweep ----------------------------------------------------


@dataclass
class FidelityPoint:
    fidelity: float
    fine_tuned: bool
    balance: float


def predictor_fidelity_sweep(
    fidelities: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 0.9, 1.0),
    tiles: int = 6,
    tile_vectors: int = TILE_DEFAULT,
    channels: int = CHANNELS_DEFAULT,
) -> List[FidelityPoint]:
    """Learned-interleaving balance vs predictor quality, +/- fine-tuning."""
    generator = _tile_setup(tile_vectors=tile_vectors, tiles=tiles)
    points: List[FidelityPoint] = []
    for fidelity in fidelities:
        for fine_tuned in (False, True):
            pages_total, max_total = 0, 0
            for t in range(tiles):
                predictor = _tile_predictor(
                    generator, t, tile_vectors, fidelity=fidelity,
                    train_queries=int(TRACE_PARAMS["train_queries"]) if fine_tuned else 0,
                )
                placement = build_placement(
                    LearnedInterleaving(predictor), tile_vectors, channels,
                    4096, 4096, tile_vectors=tile_vectors,
                )
                pages, peak = _balance(placement, generator, t, tile_vectors)
                pages_total += pages
                max_total += peak
            points.append(
                FidelityPoint(
                    fidelity=fidelity,
                    fine_tuned=fine_tuned,
                    balance=pages_total / (channels * max_total),
                )
            )
    return points


# --- training data sweep -----------------------------------------------------------


@dataclass
class TrainingPoint:
    train_queries: int
    balance: float


def training_queries_sweep(
    counts: Sequence[int] = (0, 4, 16, 64, 256, 1024),
    tiles: int = 6,
    tile_vectors: int = TILE_DEFAULT,
    channels: int = CHANNELS_DEFAULT,
    fidelity: float = 0.5,
) -> List[TrainingPoint]:
    """How much fine-tuning data the framework needs (weak prior on purpose)."""
    generator = _tile_setup(tile_vectors=tile_vectors, tiles=tiles)
    points: List[TrainingPoint] = []
    for count in counts:
        pages_total, max_total = 0, 0
        for t in range(tiles):
            predictor = _tile_predictor(
                generator, t, tile_vectors, fidelity=fidelity, train_queries=count
            )
            placement = build_placement(
                LearnedInterleaving(predictor), tile_vectors, channels,
                4096, 4096, tile_vectors=tile_vectors,
            )
            pages, peak = _balance(placement, generator, t, tile_vectors)
            pages_total += pages
            max_total += peak
        points.append(
            TrainingPoint(train_queries=count, balance=pages_total / (channels * max_total))
        )
    return points


# --- channel count sweep --------------------------------------------------------------


@dataclass
class ChannelPoint:
    channels: int
    time: float
    utilization: float


def channel_count_sweep(
    channel_counts: Sequence[int] = (2, 4, 8, 16),
    benchmark: str = "GNMT-E32K",
    queries: int = 16,
    sample_tiles: int = 6,
) -> List[ChannelPoint]:
    """End-to-end time vs flash channel count (device scaling)."""
    spec = get_benchmark(benchmark)
    points: List[ChannelPoint] = []
    for channels in channel_counts:
        config = ECSSDConfig().with_channels(channels)
        report = _run_device(
            spec, PipelineFeatures.full(), "learned",
            queries=queries, sample_tiles=sample_tiles, config=config,
        )
        points.append(
            ChannelPoint(
                channels=channels,
                time=report.scaled_total_time,
                utilization=report.fp32_channel_utilization,
            )
        )
    return points


# --- drift study ----------------------------------------------------------------------


@dataclass
class DriftPoint:
    drift: float
    stale_balance: float
    retuned_balance: float


def drift_study(
    drifts: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
    tile_vectors: int = TILE_DEFAULT,
    channels: int = CHANNELS_DEFAULT,
) -> List[DriftPoint]:
    """Stale vs re-tuned placement balance as query hotness drifts."""
    from ..workloads.drift import drifted_generator

    base = LabelHotnessModel(
        num_labels=tile_vectors * 4,
        zipf_exponent=TRACE_PARAMS["zipf_exponent"],
        run_length=int(TRACE_PARAMS["run_length"]),
        seed=3,
    )
    base_generator = CandidateTraceGenerator(
        base, candidate_ratio=0.10, query_noise=TRACE_PARAMS["query_noise"]
    )
    points: List[DriftPoint] = []
    for drift in drifts:
        drifted = drifted_generator(base, drift)
        stale_scores: List[float] = []
        retuned_scores: List[float] = []
        for t in range(4):
            # Stale: placement tuned on the ORIGINAL distribution.
            stale_predictor = _tile_predictor(
                base_generator, t, tile_vectors,
                fidelity=TRACE_PARAMS["predictor_fidelity"],
                train_queries=int(TRACE_PARAMS["train_queries"]),
            )
            stale_placement = build_placement(
                LearnedInterleaving(stale_predictor), tile_vectors, channels,
                4096, 4096, tile_vectors=tile_vectors,
            )
            stale_scores.append(
                placement_balance_under_drift(
                    stale_placement, base, drift, t, tile_vectors
                )
            )
            # Re-tuned: fine-tuned on the drifted distribution.
            retuned_predictor = _tile_predictor(
                drifted, t, tile_vectors,
                fidelity=TRACE_PARAMS["predictor_fidelity"],
                train_queries=int(TRACE_PARAMS["train_queries"]),
            )
            retuned_placement = build_placement(
                LearnedInterleaving(retuned_predictor), tile_vectors, channels,
                4096, 4096, tile_vectors=tile_vectors,
            )
            retuned_scores.append(
                placement_balance_under_drift(
                    retuned_placement, base, drift, t, tile_vectors
                )
            )
        points.append(
            DriftPoint(
                drift=drift,
                stale_balance=float(np.mean(stale_scores)),
                retuned_balance=float(np.mean(retuned_scores)),
            )
        )
    return points


# --- remap cost study ------------------------------------------------------------------


@dataclass
class RemapCostPoint:
    drift: float
    full_moved_fraction: float
    full_remap_seconds: float
    incremental_moved_fraction: float
    incremental_remap_seconds: float
    incremental_balance: float


def remap_cost_study(
    drifts: Sequence[float] = (0.25, 0.5, 0.75, 1.0),
    tile_vectors: int = TILE_DEFAULT,
    channels: int = CHANNELS_DEFAULT,
    vector_bytes: int = 4096,
) -> List[RemapCostPoint]:
    """Cost of re-interleaving after drift: full re-tune vs incremental.

    Complements :func:`drift_study` (the *benefit* of re-tuning) with the
    cost: a full LPT re-layout relocates most of the tile because any score
    reordering cascades, while :func:`incremental_rebalance` fixes the
    imbalance by migrating only the few vectors needed — and achieves
    essentially the same channel balance.
    """
    from ..layout.placement import WeightPlacement
    from ..layout.remapper import diff_placements, incremental_rebalance, remap_time
    from ..workloads.drift import drifted_generator

    base = LabelHotnessModel(
        num_labels=tile_vectors,
        zipf_exponent=TRACE_PARAMS["zipf_exponent"],
        run_length=int(TRACE_PARAMS["run_length"]),
        seed=3,
    )
    base_generator = CandidateTraceGenerator(
        base, candidate_ratio=0.10, query_noise=TRACE_PARAMS["query_noise"]
    )

    def predictor_for(generator):
        return _tile_predictor(
            generator, 0, tile_vectors,
            fidelity=TRACE_PARAMS["predictor_fidelity"],
            train_queries=int(TRACE_PARAMS["train_queries"]),
        )

    def placement_from_channels(channel_of) -> WeightPlacement:
        slot = np.zeros(tile_vectors, dtype=np.int64)
        for c in range(channels):
            members = np.flatnonzero(channel_of == c)
            slot[members] = np.arange(len(members))
        return WeightPlacement(
            num_vectors=tile_vectors,
            num_channels=channels,
            vector_bytes=vector_bytes,
            page_size=4096,
            channel_of=channel_of,
            slot_of=slot,
            strategy_name="incremental",
        )

    stale = build_placement(
        LearnedInterleaving(predictor_for(base_generator)), tile_vectors,
        channels, vector_bytes, 4096, tile_vectors=tile_vectors,
    )
    points: List[RemapCostPoint] = []
    for drift in drifts:
        drifted = drifted_generator(base, drift)
        new_predictor = predictor_for(drifted)
        fresh = build_placement(
            LearnedInterleaving(new_predictor), tile_vectors, channels,
            vector_bytes, 4096, tile_vectors=tile_vectors,
        )
        full_plan = diff_placements(stale, fresh)
        new_channels, inc_plan = incremental_rebalance(
            stale, new_predictor.scores, tolerance=0.05
        )
        inc_placement = placement_from_channels(new_channels)
        trace = drifted.tile_trace(0, tile_vectors, num_queries=16, seed=7)
        pages, peak = 0, 0
        for candidates in trace.candidates:
            counts = inc_placement.pages_per_channel(candidates)
            pages += int(counts.sum())
            peak += int(counts.max())
        points.append(
            RemapCostPoint(
                drift=drift,
                full_moved_fraction=full_plan.moved_fraction,
                full_remap_seconds=remap_time(full_plan, vector_bytes),
                incremental_moved_fraction=inc_plan.moved_fraction,
                incremental_remap_seconds=remap_time(inc_plan, vector_bytes),
                incremental_balance=pages / (channels * peak) if peak else 1.0,
            )
        )
    return points


# --- scheduler study -----------------------------------------------------------------


@dataclass
class SchedulerResult:
    policy: str
    makespan: float


def scheduler_study(
    pages: int = 32, seed: int = 0, config: Optional[ECSSDConfig] = None
) -> List[SchedulerResult]:
    """FIFO vs die-round-robin makespan for a skewed random batch."""
    config = config or ECSSDConfig()
    flash = config.flash
    geometry = FlashGeometry(flash)
    rng = np.random.default_rng(seed)

    def make_controller() -> FlashController:
        return FlashController(
            Channel(0, flash), geometry, command_overhead=config.ftl_command_overhead
        )

    commands = []
    for _ in range(pages):
        # Skewed die distribution: half the traffic on two dies.
        if rng.random() < 0.5:
            package, die = int(rng.integers(0, 1)), int(rng.integers(0, 2))
        else:
            package = int(rng.integers(0, flash.packages_per_channel))
            die = int(rng.integers(0, flash.dies_per_package))
        commands.append(
            FlashCommand(
                CommandKind.READ,
                PhysicalAddress(0, package, die, 0, int(rng.integers(0, 4)),
                                int(rng.integers(0, flash.pages_per_block))),
            )
        )
    results = compare_policies(make_controller, commands)
    return [SchedulerResult(policy=k, makespan=v) for k, v in results.items()]


# --- deployment study --------------------------------------------------------------------


def deployment_study(
    benchmarks: Sequence[str] = ("GNMT-E32K", "XMLCNN-S10M", "XMLCNN-S100M"),
    config: Optional[ECSSDConfig] = None,
) -> Dict[str, DeploymentTiming]:
    """§4.5 data-preparation time per benchmark."""
    model = DeploymentModel(config)
    return {name: model.deploy(get_benchmark(name)) for name in benchmarks}


# --- energy study -----------------------------------------------------------------------


def energy_study(
    benchmark: str = "XMLCNN-S100M",
    queries: int = 8,
    sample_tiles: int = 8,
) -> List[EnergyPoint]:
    """Per-run energy for ECSSD and every Fig. 13 baseline."""
    spec = get_benchmark(benchmark)
    report = _run_device(
        spec, PipelineFeatures.full(), "learned",
        queries=queries, sample_tiles=sample_tiles,
    )
    points = [ecssd_energy(spec, report.scaled_total_time)]
    for model in (
        CPU_N, SMARTSSD_N, GENSTORE_N, SMARTSSD_H_N,
        CPU_AP, SMARTSSD_AP, GENSTORE_AP, SMARTSSD_H_AP,
    ):
        points.append(baseline_energy(model, spec, queries))
    return points
