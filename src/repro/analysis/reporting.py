"""Plain-text rendering of experiment outputs (the bench harness's tables)."""

from __future__ import annotations

from typing import List, Sequence

from ..errors import WorkloadError


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Fixed-width text table; every row must match the header arity."""
    for row in rows:
        if len(row) != len(headers):
            raise WorkloadError(
                f"row {row!r} has {len(row)} cells, header has {len(headers)}"
            )
    cells: List[List[str]] = [[str(h) for h in headers]]
    cells += [[_fmt(value) for value in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    rule = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(rule)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.4g}"
    return str(value)


def format_seconds(seconds: float) -> str:
    """Adaptive time formatting for report rows."""
    if seconds >= 1.0:
        return f"{seconds:.3g} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.3g} ms"
    if seconds >= 1e-6:
        return f"{seconds * 1e6:.3g} us"
    return f"{seconds * 1e9:.3g} ns"


def format_ratio(ratio: float) -> str:
    return f"{ratio:.2f}x"
