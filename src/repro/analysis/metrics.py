"""Small metric helpers shared by experiments and tests."""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence

import numpy as np

from ..errors import WorkloadError


def speedup(baseline_time: float, optimized_time: float) -> float:
    """How many times faster ``optimized_time`` is than ``baseline_time``."""
    if optimized_time <= 0 or baseline_time <= 0:
        raise WorkloadError("times must be positive for a speedup")
    return baseline_time / optimized_time


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean (the right average for speedup ratios)."""
    values = list(values)
    if not values:
        raise WorkloadError("geometric mean of an empty sequence")
    if any(v <= 0 for v in values):
        raise WorkloadError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def utilization_timeline(
    pages_per_channel_series: Sequence[np.ndarray],
) -> List[float]:
    """Per-tile mean-to-peak channel-load ratio for a series of fetch patterns.

    Each entry is ``mean(pages) / max(pages)`` for one tile's per-channel
    page counts — 1.0 for a perfectly balanced (or idle) tile, approaching
    ``1/channels`` when a single channel carries everything.  Raises
    :class:`~repro.errors.WorkloadError` on an empty series: a silent ``[]``
    would make a plot of "balance over time" vacuously healthy.
    """
    if not pages_per_channel_series:
        raise WorkloadError("utilization timeline of an empty series")
    out: List[float] = []
    for counts in pages_per_channel_series:
        counts = np.asarray(counts)
        peak = counts.max()
        out.append(1.0 if peak == 0 else float(counts.mean() / peak))
    return out


def topk_retention(
    clean_labels: np.ndarray,
    faulty_labels: np.ndarray,
) -> float:
    """Fraction of queries whose clean top-1 label survives in the faulty top-k.

    The accuracy-cost metric for device faults: ``clean_labels`` and
    ``faulty_labels`` are the ``(B, k)`` top-k label matrices of a fault-free
    and a fault-injected run of the *same* queries.  A query retains its
    answer when the clean run's best label still appears anywhere in the
    faulty run's top-k (padding label -1 never matches).  Because fault
    drops are nested across an RBER sweep — a higher error rate drops a
    superset of labels — retention is monotonically nonincreasing in the
    injected RBER.
    """
    clean = np.atleast_2d(np.asarray(clean_labels))
    faulty = np.atleast_2d(np.asarray(faulty_labels))
    if clean.shape[0] != faulty.shape[0]:
        raise WorkloadError(
            f"query counts differ: {clean.shape[0]} clean vs {faulty.shape[0]} faulty"
        )
    if clean.shape[0] == 0:
        raise WorkloadError("top-k retention of an empty batch")
    top1 = clean[:, 0]
    hits = (faulty == top1[:, None]) & (top1[:, None] >= 0)
    return float(np.mean(np.any(hits, axis=1)))


def accuracy_cost(
    clean_labels: np.ndarray,
    faulty_labels: np.ndarray,
) -> float:
    """Top-k accuracy lost to injected faults: ``1 - topk_retention``."""
    return 1.0 - topk_retention(clean_labels, faulty_labels)


def weighted_utilization(
    pages_per_channel_series: Sequence[np.ndarray],
) -> float:
    """Time-weighted channel utilization over many tiles.

    Total useful transfer divided by total channel-time, where each tile's
    wall time is its busiest channel — the aggregate Fig. 8 reports.
    """
    total_pages = 0
    total_max = 0
    channels = None
    for counts in pages_per_channel_series:
        counts = np.asarray(counts)
        if channels is None:
            channels = len(counts)
        total_pages += int(counts.sum())
        total_max += int(counts.max())
    if channels is None or total_max == 0:
        return 1.0
    return total_pages / (channels * total_max)
