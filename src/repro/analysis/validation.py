"""Cross-backend validation: analytic pipeline vs event simulator.

DESIGN.md §5 promises the two timing levels are cross-checked; this driver
makes the check a first-class artifact.  For each interleaving strategy it
times identical tiles through both backends and reports:

* per-strategy flash-phase times under each backend;
* the event/analytic ratio (must sit inside the documented envelope:
  >= 1 because the event model resolves sense serialization and firmware
  overheads, <= ~2.2 for streaming-regime tiles);
* whether the strategy *ordering* agrees (the property experiments rely on).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..config import ECSSDConfig
from ..core.event_backend import EventBackedTiming
from ..core.pipeline import PipelineFeatures, TilePipelineModel, TileWorkload
from ..layout.learned import HotnessPredictor, LearnedInterleaving
from ..layout.placement import build_placement
from ..layout.uniform import UniformInterleaving
from ..workloads.traces import CandidateTraceGenerator, LabelHotnessModel
from .experiments import TRACE_PARAMS


@dataclass
class ValidationRow:
    strategy: str
    analytic_flash: float
    event_flash: float

    @property
    def ratio(self) -> float:
        if self.analytic_flash <= 0:
            return float("inf")
        return self.event_flash / self.analytic_flash


@dataclass
class ValidationReport:
    rows: List[ValidationRow]
    envelope: tuple = (0.8, 2.2)

    def ordering_agrees(self) -> bool:
        """Do both backends rank the strategies identically?"""
        by_analytic = sorted(self.rows, key=lambda r: r.analytic_flash)
        by_event = sorted(self.rows, key=lambda r: r.event_flash)
        return [r.strategy for r in by_analytic] == [r.strategy for r in by_event]

    def within_envelope(self) -> bool:
        lo, hi = self.envelope
        return all(lo <= row.ratio <= hi for row in self.rows)


def cross_validate(
    tile_vectors: int = 2048,
    tiles: int = 3,
    batch: int = 8,
    hidden_dim: int = 1024,
    shrunk_dim: int = 256,
    config: Optional[ECSSDConfig] = None,
    seed: int = 3,
) -> ValidationReport:
    """Run uniform and learned placements through both backends."""
    config = config or ECSSDConfig()
    channels = config.flash.channels
    hotness = LabelHotnessModel(
        num_labels=tile_vectors * tiles,
        zipf_exponent=TRACE_PARAMS["zipf_exponent"],
        run_length=int(TRACE_PARAMS["run_length"]),
        seed=seed,
    )
    generator = CandidateTraceGenerator(
        hotness, candidate_ratio=0.10, query_noise=TRACE_PARAMS["query_noise"]
    )
    analytic = TilePipelineModel(config=config, features=PipelineFeatures.full())
    tr = config.flash.read_latency

    strategies: Dict[str, object] = {}
    rows: List[ValidationRow] = []
    for name in ("uniform", "learned"):
        analytic_total = 0.0
        backend = EventBackedTiming(config=config)
        event_total = 0.0
        for t in range(tiles):
            if name == "learned":
                abs_sums = generator.predictor_abs_sums(
                    t, tile_vectors, fidelity=TRACE_PARAMS["predictor_fidelity"]
                )
                predictor = HotnessPredictor(abs_sums)
                train = generator.tile_trace(
                    t, tile_vectors,
                    num_queries=int(TRACE_PARAMS["train_queries"]), seed=1,
                )
                predictor.fine_tune(
                    train.selection_frequency(),
                    observations=int(TRACE_PARAMS["train_queries"]),
                )
                strategy = LearnedInterleaving(predictor)
            else:
                strategy = UniformInterleaving()
            placement = build_placement(
                strategy, tile_vectors, channels,
                4 * hidden_dim, config.flash.page_size, tile_vectors=tile_vectors,
            )
            trace = generator.tile_trace(t, tile_vectors, num_queries=batch, seed=7)
            candidates = np.unique(np.concatenate(trace.candidates))
            tile = TileWorkload(
                tile_vectors=tile_vectors,
                shrunk_dim=shrunk_dim,
                hidden_dim=hidden_dim,
                batch=batch,
                candidates=len(candidates),
                fp32_pages_per_channel=placement.pages_per_channel(candidates),
                int4_bytes=tile_vectors * ((shrunk_dim + 1) // 2),
            )
            # Event side re-pays the initial sense per tile; add it on the
            # analytic side so magnitudes are comparable.
            analytic_total += analytic.tile_timing(tile).fp32_fetch + tr
            event_total += backend.time_tile(
                placement, candidates, tile_base_page=t * 8192,
                batch=batch, shrunk_dim=shrunk_dim, hidden_dim=hidden_dim,
                int4_bytes=tile.int4_bytes,
            ).flash_makespan
        rows.append(
            ValidationRow(
                strategy=name,
                analytic_flash=analytic_total,
                event_flash=event_total,
            )
        )
        strategies[name] = strategy
    return ValidationReport(rows=rows)
