"""ASCII figure rendering: bar charts and series for terminal reports.

The bench harness records tables; the examples additionally render the
paper's figures as horizontal ASCII bar charts so a terminal run *looks*
like the evaluation section.  Pure text, deterministic width, no plotting
dependencies.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..errors import WorkloadError

DEFAULT_WIDTH = 48


def bar_chart(
    items: Sequence[Tuple[str, float]],
    title: str = "",
    width: int = DEFAULT_WIDTH,
    unit: str = "",
    reference: Optional[float] = None,
) -> str:
    """Horizontal bar chart; bars scale to the max value.

    ``reference`` draws a marker column at that value (e.g. the paper's
    number) so measured-vs-published gaps are visible at a glance.
    """
    if not items:
        raise WorkloadError("bar_chart needs at least one item")
    if width < 8:
        raise WorkloadError("width must be >= 8")
    values = [v for _, v in items]
    if any(v < 0 for v in values):
        raise WorkloadError("bar_chart values must be non-negative")
    peak = max(max(values), reference or 0.0)
    if peak == 0:
        peak = 1.0
    label_width = max(len(label) for label, _ in items)
    lines: List[str] = []
    if title:
        lines.append(title)
    marker = None
    if reference is not None:
        marker = min(width - 1, int(round(reference / peak * width)))
    for label, value in items:
        filled = int(round(value / peak * width))
        bar = list("#" * filled + " " * (width - filled))
        if marker is not None and marker < len(bar):
            bar[marker] = "|" if bar[marker] == " " else "+"
        lines.append(
            f"{label.ljust(label_width)} {''.join(bar)} {value:.4g}{unit}"
        )
    if reference is not None:
        lines.append(
            f"{''.ljust(label_width)} {' ' * (marker or 0)}^ paper: {reference:.4g}{unit}"
        )
    return "\n".join(lines)


def grouped_bars(
    groups: Sequence[Tuple[str, Sequence[Tuple[str, float]]]],
    title: str = "",
    width: int = DEFAULT_WIDTH,
    unit: str = "",
) -> str:
    """Multiple labeled groups of bars sharing one scale."""
    if not groups:
        raise WorkloadError("grouped_bars needs at least one group")
    all_values = [v for _, items in groups for _, v in items]
    if not all_values:
        raise WorkloadError("grouped_bars needs at least one value")
    peak = max(all_values) or 1.0
    label_width = max(len(label) for _, items in groups for label, _ in items)
    lines: List[str] = []
    if title:
        lines.append(title)
    for group_name, items in groups:
        lines.append(f"[{group_name}]")
        for label, value in items:
            filled = int(round(value / peak * width))
            lines.append(
                f"  {label.ljust(label_width)} {'#' * filled}"
                f"{' ' * (width - filled)} {value:.4g}{unit}"
            )
    return "\n".join(lines)


def sparkline(values: Sequence[float], width: Optional[int] = None) -> str:
    """One-line trend of a series using block characters."""
    if len(values) == 0:
        raise WorkloadError("sparkline needs values")
    blocks = " .:-=+*#%@"
    lo, hi = min(values), max(values)
    span = hi - lo or 1.0
    picked = values
    if width is not None and len(values) > width:
        step = len(values) / width
        picked = [values[int(i * step)] for i in range(width)]
    return "".join(
        blocks[min(len(blocks) - 1, int((v - lo) / span * (len(blocks) - 1)))]
        for v in picked
    )
