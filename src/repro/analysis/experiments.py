"""Experiment drivers: one function per paper table/figure.

Each driver builds the devices/baselines it needs, runs the workload, and
returns a result dataclass carrying both *our* measurements and the *paper's*
published values, so the bench harness can print them side by side.  The
DESIGN.md experiment index (E1-E14) maps each driver to its artifact.

Calibrated trace parameters (shared by every timing experiment) live in
:data:`TRACE_PARAMS`; DESIGN.md §6 documents how they were chosen.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..baselines import (
    CPU_AP,
    CPU_N,
    GENSTORE_AP,
    GENSTORE_N,
    SMARTSSD_AP,
    SMARTSSD_H_AP,
    SMARTSSD_H_N,
    SMARTSSD_N,
)
from ..baselines.common import ArchitectureModel
from ..cfp32.circuits import MacCircuitModel, MacDesign
from ..config import ECSSDConfig
from ..core.ecssd import ECSSDevice, PerformanceReport
from ..core.pipeline import PipelineFeatures
from ..layout.learned import HotnessPredictor, LearnedInterleaving
from ..layout.placement import build_placement
from ..layout.uniform import UniformInterleaving
from ..workloads.benchmarks import (
    INTERLEAVING_SET,
    LARGE_SCALE,
    BenchmarkSpec,
    get_benchmark,
)
from ..workloads.traces import CandidateTraceGenerator, LabelHotnessModel
from .metrics import geometric_mean

# Calibrated candidate-trace parameters (see DESIGN.md §6): Zipf-skewed
# per-label hotness, near-deterministic per-query selection, an imperfect
# INT4 predictor fine-tuned on a training trace.
TRACE_PARAMS: Dict[str, float] = {
    "zipf_exponent": 1.1,
    "run_length": 1,
    "query_noise": 0.05,
    "predictor_fidelity": 0.9,
    "train_queries": 300,
}
DEFAULT_SAMPLE_TILES = 12
DEFAULT_QUERIES = 64


def _generator(
    spec: BenchmarkSpec, candidate_ratio: Optional[float] = None, seed: int = 3
) -> CandidateTraceGenerator:
    hotness = LabelHotnessModel(
        num_labels=spec.num_labels,
        zipf_exponent=TRACE_PARAMS["zipf_exponent"],
        run_length=int(TRACE_PARAMS["run_length"]),
        seed=seed,
    )
    return CandidateTraceGenerator(
        hotness,
        candidate_ratio=candidate_ratio or spec.candidate_ratio,
        query_noise=TRACE_PARAMS["query_noise"],
    )


def _run_device(
    spec: BenchmarkSpec,
    features: PipelineFeatures,
    interleaving: str,
    queries: int = DEFAULT_QUERIES,
    sample_tiles: int = DEFAULT_SAMPLE_TILES,
    candidate_ratio: Optional[float] = None,
    config: Optional[ECSSDConfig] = None,
) -> PerformanceReport:
    device = ECSSDevice(config=config, features=features, interleaving=interleaving)
    device.deploy_spec(spec)
    return device.run_trace(
        _generator(spec, candidate_ratio),
        queries=queries,
        sample_tiles=sample_tiles,
        train_queries=int(TRACE_PARAMS["train_queries"]),
        predictor_fidelity=TRACE_PARAMS["predictor_fidelity"],
    )


# --- Fig. 8: step-wise breakdown ---------------------------------------------------


@dataclass
class BreakdownStep:
    label: str
    time: float
    speedup_vs_baseline: float
    fp32_utilization: float
    paper_speedup: Optional[float] = None
    paper_utilization: Optional[float] = None


FIG8_STEPS = (
    ("baseline (seq + homo + naive MAC)", MacDesign.NAIVE, False, False, "sequential"),
    ("+ uniform interleaving", MacDesign.NAIVE, False, False, "uniform"),
    ("+ alignment-free FP MAC", MacDesign.ALIGNMENT_FREE, False, True, "uniform"),
    ("+ heterogeneous layout", MacDesign.ALIGNMENT_FREE, True, True, "uniform"),
    ("+ learned interleaving", MacDesign.ALIGNMENT_FREE, True, True, "learned"),
)
FIG8_PAPER = {
    "baseline (seq + homo + naive MAC)": (1.0, 0.10),
    "+ uniform interleaving": (4.06, 0.4431),
    "+ alignment-free FP MAC": (None, None),
    "+ heterogeneous layout": (None, 0.676),
    "+ learned interleaving": (10.5, 0.947),
}


def fig8_breakdown(
    benchmarks: Sequence[str] = INTERLEAVING_SET,
    queries: int = DEFAULT_QUERIES,
    sample_tiles: int = DEFAULT_SAMPLE_TILES,
) -> List[BreakdownStep]:
    """Fig. 8: cumulative technique breakdown, averaged over benchmarks."""
    per_step_times: Dict[str, List[float]] = {label: [] for label, *_ in FIG8_STEPS}
    per_step_utils: Dict[str, List[float]] = {label: [] for label, *_ in FIG8_STEPS}
    for name in benchmarks:
        spec = get_benchmark(name)
        for label, mac, hetero, overlap, interleaving in FIG8_STEPS:
            features = PipelineFeatures(
                mac_design=mac, heterogeneous=hetero, overlap=overlap, label=label
            )
            report = _run_device(
                spec, features, interleaving, queries=queries, sample_tiles=sample_tiles
            )
            per_step_times[label].append(report.scaled_total_time)
            per_step_utils[label].append(report.fp32_channel_utilization)

    steps: List[BreakdownStep] = []
    base_label = FIG8_STEPS[0][0]
    for label, *_ in FIG8_STEPS:
        speedups = [
            base / t for base, t in zip(per_step_times[base_label], per_step_times[label])
        ]
        paper_speedup, paper_util = FIG8_PAPER[label]
        steps.append(
            BreakdownStep(
                label=label,
                time=float(np.mean(per_step_times[label])),
                speedup_vs_baseline=geometric_mean(speedups),
                fp32_utilization=float(np.mean(per_step_utils[label])),
                paper_speedup=paper_speedup,
                paper_utilization=paper_util,
            )
        )
    return steps


# --- Fig. 9: MAC circuit comparison ---------------------------------------------------


@dataclass
class MacComparison:
    design: str
    area_ratio: float
    power_ratio: float
    paper_area_ratio: float
    paper_power_ratio: float


def fig9_mac_comparison() -> List[MacComparison]:
    """Fig. 9: iso-throughput area/power of the three MAC circuits."""
    af = MacCircuitModel(MacDesign.ALIGNMENT_FREE)
    rows = []
    paper = {
        MacDesign.NAIVE: (1.73, 1.53),
        MacDesign.SK_HYNIX: (1.38, 1.19),
        MacDesign.ALIGNMENT_FREE: (1.0, 1.0),
    }
    for design in (MacDesign.NAIVE, MacDesign.SK_HYNIX, MacDesign.ALIGNMENT_FREE):
        model = MacCircuitModel(design)
        rows.append(
            MacComparison(
                design=design.value,
                area_ratio=model.area_units / af.area_units,
                power_ratio=model.power_units / af.power_units,
                paper_area_ratio=paper[design][0],
                paper_power_ratio=paper[design][1],
            )
        )
    return rows


# --- Fig. 10: heterogeneous layout sweep ---------------------------------------------


@dataclass
class HeteroPoint:
    candidate_ratio: float
    homogeneous_time: float
    heterogeneous_time: float

    @property
    def speedup(self) -> float:
        return self.homogeneous_time / self.heterogeneous_time


FIG10_PAPER = {"speedup_at_5pct": 1.73, "average_speedup": 1.43}


def fig10_hetero_layout(
    ratios: Sequence[float] = (0.05, 0.10, 0.15, 0.20),
    benchmark: str = "Transformer-W268K",
    queries: int = DEFAULT_QUERIES,
    sample_tiles: int = DEFAULT_SAMPLE_TILES,
) -> List[HeteroPoint]:
    """Fig. 10: homo vs hetero layout across candidate ratios."""
    spec = get_benchmark(benchmark)
    points = []
    for ratio in ratios:
        homo = _run_device(
            spec,
            PipelineFeatures(
                mac_design=MacDesign.ALIGNMENT_FREE,
                heterogeneous=False,
                overlap=True,
                label="homogeneous",
            ),
            "uniform",
            queries=queries,
            sample_tiles=sample_tiles,
            candidate_ratio=ratio,
        )
        hetero = _run_device(
            spec,
            PipelineFeatures(
                mac_design=MacDesign.ALIGNMENT_FREE,
                heterogeneous=True,
                overlap=True,
                label="heterogeneous",
            ),
            "uniform",
            queries=queries,
            sample_tiles=sample_tiles,
            candidate_ratio=ratio,
        )
        points.append(
            HeteroPoint(
                candidate_ratio=ratio,
                homogeneous_time=homo.scaled_total_time,
                heterogeneous_time=hetero.scaled_total_time,
            )
        )
    return points


# --- Fig. 11: access-pattern comparison ----------------------------------------------


@dataclass
class AccessPattern:
    strategy: str
    pages_per_channel: np.ndarray

    @property
    def balance(self) -> float:
        peak = self.pages_per_channel.max()
        return 1.0 if peak == 0 else float(self.pages_per_channel.mean() / peak)


def fig11_access_pattern(
    benchmark: str = "GNMT-E32K",
    candidate_ratio: float = 0.10,
    tile_index: int = 0,
    seed: int = 3,
) -> List[AccessPattern]:
    """Fig. 11: one tile's per-channel page loads, uniform vs learned."""
    spec = get_benchmark(benchmark)
    config = ECSSDConfig()
    device = ECSSDevice(interleaving="learned")
    device.deploy_spec(spec)
    tile_vectors = device.deployment.tile_vectors
    generator = _generator(spec, candidate_ratio, seed=seed)
    trace = generator.tile_trace(tile_index, tile_vectors, num_queries=spec.batch_size)
    union = np.unique(np.concatenate(trace.candidates))

    uniform = build_placement(
        UniformInterleaving(),
        tile_vectors,
        config.flash.channels,
        vector_bytes=4 * spec.hidden_dim,
        page_size=config.flash.page_size,
        tile_vectors=tile_vectors,
    )
    abs_sums = generator.predictor_abs_sums(
        tile_index, tile_vectors, fidelity=TRACE_PARAMS["predictor_fidelity"]
    )
    predictor = HotnessPredictor(abs_sums)
    train = generator.tile_trace(
        tile_index, tile_vectors, num_queries=int(TRACE_PARAMS["train_queries"]), seed=1
    )
    predictor.fine_tune(
        train.selection_frequency(), observations=int(TRACE_PARAMS["train_queries"])
    )
    learned = build_placement(
        LearnedInterleaving(predictor),
        tile_vectors,
        config.flash.channels,
        vector_bytes=4 * spec.hidden_dim,
        page_size=config.flash.page_size,
        tile_vectors=tile_vectors,
    )
    return [
        AccessPattern("uniform", uniform.pages_per_channel(union)),
        AccessPattern("learned", learned.pages_per_channel(union)),
    ]


# --- Fig. 12: interleaving strategy comparison ------------------------------------------


@dataclass
class InterleavingResult:
    benchmark: str
    times: Dict[str, float] = field(default_factory=dict)

    def speedup(self, slow: str, fast: str) -> float:
        return self.times[slow] / self.times[fast]


FIG12_PAPER = {"learned_vs_uniform": 1.43, "learned_vs_sequential": 7.57}


def fig12_interleaving(
    benchmarks: Sequence[str] = INTERLEAVING_SET,
    queries: int = DEFAULT_QUERIES,
    sample_tiles: int = DEFAULT_SAMPLE_TILES,
) -> List[InterleavingResult]:
    """Fig. 12: sequential vs uniform vs learned on four benchmarks."""
    results = []
    for name in benchmarks:
        spec = get_benchmark(name)
        result = InterleavingResult(benchmark=name)
        for strategy in ("sequential", "uniform", "learned"):
            report = _run_device(
                spec,
                PipelineFeatures.full(),
                strategy,
                queries=queries,
                sample_tiles=sample_tiles,
            )
            result.times[strategy] = report.scaled_total_time
        results.append(result)
    return results


# --- Fig. 13: end-to-end architecture comparison ------------------------------------------

ALL_BASELINES: Sequence[ArchitectureModel] = (
    CPU_N,
    SMARTSSD_N,
    GENSTORE_N,
    SMARTSSD_H_N,
    CPU_AP,
    SMARTSSD_AP,
    GENSTORE_AP,
    SMARTSSD_H_AP,
)

FIG13_PAPER = {
    "CPU-N": 49.87,
    "SmartSSD-N": 37.83,
    "GenStore-N": 24.51,
    "SmartSSD-H-N": 19.11,
    "CPU-AP": 8.22,
    "SmartSSD-AP": 6.28,
    "GenStore-AP": 4.05,
    "SmartSSD-H-AP": 3.24,
}


@dataclass
class EndToEndResult:
    architecture: str
    per_benchmark_time: Dict[str, float]
    mean_slowdown_vs_ecssd: float
    paper_slowdown: Optional[float]


def fig13_end_to_end(
    benchmarks: Sequence[str] = LARGE_SCALE,
    queries: int = 8,
    sample_tiles: int = DEFAULT_SAMPLE_TILES,
) -> List[EndToEndResult]:
    """Fig. 13: ECSSD vs the eight baselines on the large benchmarks."""
    ecssd_times: Dict[str, float] = {}
    for name in benchmarks:
        spec = get_benchmark(name)
        report = _run_device(
            spec,
            PipelineFeatures.full(),
            "learned",
            queries=queries,
            sample_tiles=sample_tiles,
        )
        ecssd_times[name] = report.scaled_total_time

    results = [
        EndToEndResult(
            architecture="ECSSD",
            per_benchmark_time=dict(ecssd_times),
            mean_slowdown_vs_ecssd=1.0,
            paper_slowdown=1.0,
        )
    ]
    for baseline in ALL_BASELINES:
        times = {}
        ratios = []
        for name in benchmarks:
            spec = get_benchmark(name)
            times[name] = baseline.time_for_queries(spec, queries, spec.batch_size)
            ratios.append(times[name] / ecssd_times[name])
        results.append(
            EndToEndResult(
                architecture=baseline.name,
                per_benchmark_time=times,
                mean_slowdown_vs_ecssd=geometric_mean(ratios),
                paper_slowdown=FIG13_PAPER.get(baseline.name),
            )
        )
    return results


# --- §7.1: scalability --------------------------------------------------------------------


@dataclass
class ScalabilityPoint:
    dram_capacity_gib: int
    max_categories_millions: float
    paper_max_millions: Optional[float]


def sec71_scalability(
    hidden_dim: int = 1024, reserved_gib: float = 0.25
) -> List[ScalabilityPoint]:
    """§7.1: max deployable category count vs DRAM capacity.

    The 4-bit matrix (K = D/4 codes at 2 per byte) must fit DRAM alongside
    the reserved management share.
    """
    shrunk = hidden_dim // 4
    bytes_per_category = (shrunk + 1) // 2
    paper = {8: 50.0, 16: 100.0, 32: 200.0}
    points = []
    for gib in (8, 16, 32):
        usable = (gib - reserved_gib) * (1 << 30)
        max_categories = usable / bytes_per_category
        points.append(
            ScalabilityPoint(
                dram_capacity_gib=gib,
                max_categories_millions=max_categories / 1e6,
                paper_max_millions=paper.get(gib),
            )
        )
    return points


@dataclass
class ScaleOutPlan:
    categories_millions: float
    devices_needed: int
    int4_total_gib: float
    fp32_total_tib: float


def sec71_scale_out(
    categories: int = 500_000_000,
    hidden_dim: int = 1024,
    per_device_categories: int = 100_000_000,
) -> ScaleOutPlan:
    """§7.1: partitioning a 500M-category layer across ECSSDs (paper: 5).

    The paper shards at the granularity of the supported scenario size —
    100M categories per device, the workload its 16 GiB DRAM is provisioned
    for — rather than packing each device to its raw byte limit.
    """
    shrunk = hidden_dim // 4
    int4_bytes = categories * ((shrunk + 1) // 2)
    fp32_bytes = categories * 4 * hidden_dim
    devices = max(1, -(-categories // per_device_categories))
    return ScaleOutPlan(
        categories_millions=categories / 1e6,
        devices_needed=devices,
        int4_total_gib=int4_bytes / (1 << 30),
        fp32_total_tib=fp32_bytes / (1 << 40),
    )
