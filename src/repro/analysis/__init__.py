"""Analysis layer: roofline model, metrics, experiment drivers, reporting.

:mod:`repro.analysis.experiments` contains one driver per paper artifact
(Fig. 1 and Figs. 8-13, Tables 2-4, the §4.2/§7 studies); each returns plain
dataclasses that :mod:`repro.analysis.reporting` renders as text tables —
the benchmarks under ``benchmarks/`` print those tables next to the paper's
published values.
"""

from .roofline import RooflineModel, RooflinePoint
from .metrics import speedup, geometric_mean, utilization_timeline
from .reporting import render_table, format_seconds, format_ratio
from .energy import EnergyPoint, baseline_energy, ecssd_energy
from .figures import bar_chart, grouped_bars, sparkline

__all__ = [
    "RooflineModel",
    "RooflinePoint",
    "speedup",
    "geometric_mean",
    "utilization_timeline",
    "render_table",
    "format_seconds",
    "format_ratio",
    "EnergyPoint",
    "baseline_energy",
    "ecssd_energy",
    "bar_chart",
    "grouped_bars",
    "sparkline",
]
