"""Roofline model for the in-storage accelerator (Fig. 1).

The roofline has a compute ceiling (the FP32 MAC array's peak GFLOPS under
the area budget) and a memory slope (achieved internal bandwidth times the
workload's operational intensity).  The paper's three points:

* **A** — naive MAC, uniform interleaving, homogeneous layout: the compute
  ceiling (29.2 GFLOPS) sits below the bandwidth line → compute-bound;
* **B** — alignment-free MAC raises the ceiling to 50 GFLOPS → the workload
  becomes memory-bound at the *achieved* (interference- and imbalance-
  degraded) bandwidth;
* **C** — heterogeneous layout + learned interleaving raise achieved
  bandwidth toward the 8 GB/s peak → performance approaches the roofline
  corner.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError


@dataclass(frozen=True)
class RooflinePoint:
    """One operating point on the roofline."""

    label: str
    compute_ceiling_gflops: float
    achieved_bandwidth_gbs: float
    operational_intensity: float  # FLOP per byte fetched from flash

    @property
    def memory_bound_gflops(self) -> float:
        return self.achieved_bandwidth_gbs * self.operational_intensity

    @property
    def attained_gflops(self) -> float:
        return min(self.compute_ceiling_gflops, self.memory_bound_gflops)

    @property
    def is_compute_bound(self) -> bool:
        return self.compute_ceiling_gflops <= self.memory_bound_gflops


class RooflineModel:
    """Builds Fig. 1's A/B/C points for a device + workload."""

    def __init__(
        self,
        peak_bandwidth_gbs: float = 8.0,
        batch: int = 8,
        bytes_per_element: int = 4,
    ) -> None:
        if peak_bandwidth_gbs <= 0 or batch <= 0 or bytes_per_element <= 0:
            raise ConfigurationError("roofline parameters must be positive")
        self.peak_bandwidth_gbs = peak_bandwidth_gbs
        self.batch = batch
        self.bytes_per_element = bytes_per_element

    @property
    def operational_intensity(self) -> float:
        """FLOP per fetched byte: each element serves the whole batch."""
        return 2.0 * self.batch / self.bytes_per_element

    def point(
        self, label: str, compute_gflops: float, bandwidth_utilization: float
    ) -> RooflinePoint:
        if not (0.0 <= bandwidth_utilization <= 1.0):
            raise ConfigurationError("utilization must be in [0, 1]")
        return RooflinePoint(
            label=label,
            compute_ceiling_gflops=compute_gflops,
            achieved_bandwidth_gbs=self.peak_bandwidth_gbs * bandwidth_utilization,
            operational_intensity=self.operational_intensity,
        )

    def paper_points(
        self,
        naive_gflops: float = 29.2,
        af_gflops: float = 50.0,
        baseline_utilization: float = 0.44,
        final_utilization: float = 0.95,
    ) -> list:
        """The A/B/C trajectory with configurable utilizations."""
        return [
            self.point("A: in-storage baseline", naive_gflops, baseline_utilization),
            self.point("B: + alignment-free MAC", af_gflops, baseline_utilization),
            self.point("C: + hetero layout + learned interleaving", af_gflops, final_utilization),
        ]
