"""Energy and efficiency analysis (extends §7.2/§7.3 to per-query energy).

The paper argues efficiency with peak-rate ratios (GFLOPS/W, GFLOPS/$);
this module also computes *energy per inference* — power x time for each
architecture on each benchmark — which is what a deployment actually pays.

Device power figures: ECSSD adds its 52.93 mW accelerator to an SSD-class
~8 W device; CPU ~85 W (Xeon 4110 TDP); SmartSSD ~25 W (SSD + FPGA);
GenStore-class ~9 W; RTX 3090 350 W.  These are published TDP-class numbers,
coarse by nature — conclusions should only be drawn from order-of-magnitude
gaps, which is how the paper uses them too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ..baselines.common import ArchitectureModel
from ..errors import ConfigurationError
from ..workloads.benchmarks import BenchmarkSpec

# Whole-device operating power, watts.
DEVICE_POWER_W: Dict[str, float] = {
    "ECSSD": 8.0 + 0.05293,
    "CPU-N": 85.0 + 8.0,  # host CPU + the SSD it reads from
    "CPU-AP": 85.0 + 8.0,
    "GenStore-N": 9.0,
    "GenStore-AP": 9.0,
    "SmartSSD-N": 25.0,
    "SmartSSD-AP": 25.0,
    "SmartSSD-H-N": 25.0,
    "SmartSSD-H-AP": 25.0,
}


@dataclass(frozen=True)
class EnergyPoint:
    """Energy of one architecture running one benchmark batch stream."""

    architecture: str
    benchmark: str
    time_seconds: float
    power_watts: float

    @property
    def energy_joules(self) -> float:
        return self.time_seconds * self.power_watts

    def energy_ratio_vs(self, other: "EnergyPoint") -> float:
        if other.energy_joules <= 0:
            raise ConfigurationError("cannot compare against zero energy")
        return self.energy_joules / other.energy_joules


def baseline_energy(
    model: ArchitectureModel,
    spec: BenchmarkSpec,
    queries: int,
    batch: Optional[int] = None,
    power_watts: Optional[float] = None,
) -> EnergyPoint:
    """Energy a baseline architecture burns serving ``queries``."""
    batch = batch or spec.batch_size
    power = power_watts if power_watts is not None else DEVICE_POWER_W[model.name]
    time = model.time_for_queries(spec, queries, batch)
    return EnergyPoint(
        architecture=model.name,
        benchmark=spec.name,
        time_seconds=time,
        power_watts=power,
    )


def ecssd_energy(
    spec: BenchmarkSpec, total_time: float, power_watts: Optional[float] = None
) -> EnergyPoint:
    """Energy for an ECSSD run whose time came from the pipeline model."""
    power = power_watts if power_watts is not None else DEVICE_POWER_W["ECSSD"]
    return EnergyPoint(
        architecture="ECSSD",
        benchmark=spec.name,
        time_seconds=total_time,
        power_watts=power,
    )


def efficiency_table(points: Sequence[EnergyPoint]) -> list:
    """Rows of (architecture, time, energy, energy-vs-first) for reporting."""
    if not points:
        raise ConfigurationError("efficiency_table needs at least one point")
    reference = points[0]
    rows = []
    for point in points:
        rows.append(
            [
                point.architecture,
                point.time_seconds,
                point.energy_joules,
                point.energy_ratio_vs(reference),
            ]
        )
    return rows
