"""Weight data layout: interleaving strategies and the heterogeneous split.

This package answers *where each weight vector lives*:

* :mod:`repro.layout.placement` — the placement framework: packing weight
  vectors into flash pages per channel and computing the per-channel page
  counts a candidate fetch touches.
* :mod:`repro.layout.sequential` / :mod:`repro.layout.uniform` /
  :mod:`repro.layout.learned` — the three §5 channel-assignment strategies.
* :mod:`repro.layout.heterogeneous` — §4.3's 4-bit-in-DRAM / 32-bit-in-flash
  split versus the homogeneous everything-in-flash baseline.
"""

from .placement import (
    InterleavingStrategy,
    WeightPlacement,
    build_placement,
)
from .sequential import SequentialStoring
from .uniform import UniformInterleaving
from .learned import HotnessPredictor, LearnedInterleaving, HotGrade
from .graded import GradedInterleaving
from .remapper import RemapPlan, VectorMove, diff_placements, remap_time
from .heterogeneous import DataLocation, WeightLayout, heterogeneous_layout, homogeneous_layout

__all__ = [
    "InterleavingStrategy",
    "WeightPlacement",
    "build_placement",
    "SequentialStoring",
    "UniformInterleaving",
    "HotnessPredictor",
    "LearnedInterleaving",
    "GradedInterleaving",
    "RemapPlan",
    "VectorMove",
    "diff_placements",
    "remap_time",
    "HotGrade",
    "DataLocation",
    "WeightLayout",
    "heterogeneous_layout",
    "homogeneous_layout",
]
