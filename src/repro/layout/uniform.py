"""Uniform interleaving (§5.2, Fig. 6): round-robin vectors over channels.

Vector *i* goes to channel ``i % num_channels``.  Every tile now spreads over
all channels, but the *candidate* load per channel is whatever the screening
results happen to select — hot labels cluster in label space, so some
channels draw systematically more candidates than others and the tile waits
on the busiest one (the paper measures ~44% utilization).
"""

from __future__ import annotations

import numpy as np

from .placement import InterleavingStrategy


class UniformInterleaving(InterleavingStrategy):
    """Classic modulo round-robin placement."""

    name = "uniform"

    def assign_channels(
        self, num_vectors: int, num_channels: int, tile_vectors: int
    ) -> np.ndarray:
        return np.arange(num_vectors, dtype=np.int64) % num_channels
