"""Heterogeneous vs homogeneous placement of the two weight matrices (§4.3).

The screener's 4-bit matrix and the classifier's 32-bit matrix move through
the device on every tile.  Two layouts are compared:

* **Homogeneous** — both matrices live in NAND flash.  Each tile's 4-bit
  weight fetch occupies the same channel buses as the 32-bit candidate
  fetch, so the streams interfere and the tile's flash time covers both.
* **Heterogeneous (ECSSD)** — the 4-bit matrix lives entirely in the SSD's
  DRAM; flash channels carry only 32-bit candidate data while the DRAM port
  feeds the INT4 MAC array concurrently.

:class:`WeightLayout` captures the choice plus the footprint bookkeeping the
scalability discussion (§7.1) needs — whether the 4-bit matrix fits DRAM.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import CapacityError


class DataLocation(enum.Enum):
    """Which medium holds a weight matrix."""

    DRAM = "dram"
    FLASH = "flash"


@dataclass(frozen=True)
class WeightLayout:
    """Where each precision's weight matrix is stored."""

    int4_location: DataLocation
    fp32_location: DataLocation = DataLocation.FLASH
    int4_bytes: int = 0
    fp32_bytes: int = 0

    @property
    def is_heterogeneous(self) -> bool:
        return self.int4_location is DataLocation.DRAM

    def check_dram_capacity(self, dram_capacity: int, reserved: int = 0) -> None:
        """Raise if the DRAM-resident share exceeds capacity (§7.1).

        ``reserved`` accounts for the L2P table and management data that
        share the DRAM.
        """
        needed = reserved
        if self.int4_location is DataLocation.DRAM:
            needed += self.int4_bytes
        if self.fp32_location is DataLocation.DRAM:
            needed += self.fp32_bytes
        if needed > dram_capacity:
            raise CapacityError(
                f"layout needs {needed} B of DRAM but only"
                f" {dram_capacity} B available"
            )

    def flash_bytes(self) -> int:
        total = 0
        if self.int4_location is DataLocation.FLASH:
            total += self.int4_bytes
        if self.fp32_location is DataLocation.FLASH:
            total += self.fp32_bytes
        return total


def heterogeneous_layout(int4_bytes: int, fp32_bytes: int) -> WeightLayout:
    """ECSSD's layout: 4-bit in DRAM, 32-bit in flash."""
    return WeightLayout(
        int4_location=DataLocation.DRAM,
        fp32_location=DataLocation.FLASH,
        int4_bytes=int4_bytes,
        fp32_bytes=fp32_bytes,
    )


def homogeneous_layout(int4_bytes: int, fp32_bytes: int) -> WeightLayout:
    """Baseline layout: both matrices in flash (transfer interference)."""
    return WeightLayout(
        int4_location=DataLocation.FLASH,
        fp32_location=DataLocation.FLASH,
        int4_bytes=int4_bytes,
        fp32_bytes=fp32_bytes,
    )
