"""Placement framework: weight vectors -> flash channels -> logical pages.

A *placement* fixes, for every 32-bit weight vector, which flash channel
holds it and which logical page(s) within that channel.  The inference-time
question the timing model asks is: *given this tile's candidate vectors, how
many pages must each channel read?* — answered by
:meth:`WeightPlacement.pages_per_channel`.

Packing rules:

* a vector smaller than a page shares pages with its channel-neighbours
  (``vectors_per_page = page_size // vector_bytes``), so fetching two
  candidates that happen to sit in the same page costs one read;
* a vector larger than a page occupies ``ceil(vector_bytes / page_size)``
  dedicated pages.

Channel assignment itself is delegated to an :class:`InterleavingStrategy`
(§5's sequential / uniform / learned variants live in sibling modules).
"""

from __future__ import annotations

import abc
import logging
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..errors import ConfigurationError, WorkloadError

logger = logging.getLogger(__name__)


class InterleavingStrategy(abc.ABC):
    """Assigns each weight vector to a flash channel."""

    name: str = "abstract"

    @abc.abstractmethod
    def assign_channels(
        self,
        num_vectors: int,
        num_channels: int,
        tile_vectors: int,
    ) -> np.ndarray:
        """Return an int array (num_vectors,) of channel indices.

        ``tile_vectors`` is the number of weight vectors processed per tile;
        strategies that balance per-tile workloads (the learned one) need it.
        """


@dataclass
class WeightPlacement:
    """A concrete placement of ``num_vectors`` weight vectors."""

    num_vectors: int
    num_channels: int
    vector_bytes: int
    page_size: int
    channel_of: np.ndarray  # (L,) channel per vector
    slot_of: np.ndarray  # (L,) slot order within its channel
    strategy_name: str

    def __post_init__(self) -> None:
        if self.channel_of.shape != (self.num_vectors,):
            raise WorkloadError("channel_of must have one entry per vector")
        if self.slot_of.shape != (self.num_vectors,):
            raise WorkloadError("slot_of must have one entry per vector")
        if self.num_vectors and (
            self.channel_of.min() < 0 or self.channel_of.max() >= self.num_channels
        ):
            raise WorkloadError("channel index outside device")

    # --- packing arithmetic ------------------------------------------------------
    @property
    def vectors_per_page(self) -> int:
        """How many vectors share one page (0 when vectors span pages)."""
        if self.vector_bytes <= self.page_size:
            return max(1, self.page_size // self.vector_bytes)
        return 0

    @property
    def pages_per_vector(self) -> int:
        """Pages one vector occupies when it is page-sized or larger."""
        return -(-self.vector_bytes // self.page_size)

    def page_index_of(self, vector: int) -> int:
        """First channel-local page index holding ``vector``."""
        slot = int(self.slot_of[vector])
        if self.vectors_per_page:
            return slot // self.vectors_per_page
        return slot * self.pages_per_vector

    def channel_pages(self, channel: int) -> int:
        """Total channel-local pages this placement occupies on ``channel``."""
        count = int((self.channel_of == channel).sum())
        if self.vectors_per_page:
            return -(-count // self.vectors_per_page)
        return count * self.pages_per_vector

    # --- fetch analysis -------------------------------------------------------------
    def pages_per_channel(self, candidates: np.ndarray) -> np.ndarray:
        """Pages each channel reads to fetch ``candidates`` (Fig. 11's data).

        Shared pages are counted once; multi-page vectors count all their
        pages.  This is the per-tile access pattern whose maximum determines
        tile latency.
        """
        candidates = np.asarray(candidates, dtype=np.int64)
        counts = np.zeros(self.num_channels, dtype=np.int64)
        if candidates.size == 0:
            return counts
        if candidates.min() < 0 or candidates.max() >= self.num_vectors:
            raise WorkloadError("candidate index outside placement")
        channels = self.channel_of[candidates]
        if self.vectors_per_page:
            pages = self.slot_of[candidates] // self.vectors_per_page
            keys = channels.astype(np.int64) * (2**40) + pages
            unique_keys = np.unique(keys)
            unique_channels = (unique_keys // (2**40)).astype(np.int64)
            np.add.at(counts, unique_channels, 1)
        else:
            np.add.at(counts, channels, self.pages_per_vector)
        return counts

    def fetch_page_lists(self, candidates: np.ndarray) -> Dict[int, np.ndarray]:
        """Channel -> sorted channel-local page indices for a candidate set.

        This is what the event-level simulator consumes (each page becomes a
        flash read command on its channel).
        """
        candidates = np.asarray(candidates, dtype=np.int64)
        result: Dict[int, np.ndarray] = {}
        if candidates.size == 0:
            return result
        channels = self.channel_of[candidates]
        for channel in np.unique(channels):
            members = candidates[channels == channel]
            if self.vectors_per_page:
                pages = np.unique(self.slot_of[members] // self.vectors_per_page)
            else:
                starts = self.slot_of[members] * self.pages_per_vector
                pages = np.unique(
                    (starts[:, None] + np.arange(self.pages_per_vector)).ravel()
                )
            result[int(channel)] = pages.astype(np.int64)
        return result

    def balance_metric(self, candidates: np.ndarray) -> float:
        """mean/max page load across channels: 1.0 is perfectly balanced.

        This is exactly the channel-bandwidth-utilization upper bound for the
        tile: the tile ends when the busiest channel drains.
        """
        counts = self.pages_per_channel(candidates)
        peak = counts.max()
        if peak == 0:
            return 1.0
        return float(counts.mean() / peak)


def build_placement(
    strategy: InterleavingStrategy,
    num_vectors: int,
    num_channels: int,
    vector_bytes: int,
    page_size: int,
    tile_vectors: Optional[int] = None,
) -> WeightPlacement:
    """Run a strategy and pack its assignment into a :class:`WeightPlacement`.

    Slots are assigned in vector-index order within each channel, so two
    vectors adjacent in label order that share a channel also share (or
    neighbour) pages — matching how a real deployment streams the matrix in.
    """
    if num_vectors <= 0:
        raise ConfigurationError("placement needs at least one vector")
    if num_channels <= 0:
        raise ConfigurationError("placement needs at least one channel")
    if vector_bytes <= 0 or page_size <= 0:
        raise ConfigurationError("vector/page sizes must be positive")
    tile = tile_vectors if tile_vectors is not None else num_vectors
    channel_of = np.asarray(
        strategy.assign_channels(num_vectors, num_channels, tile),
        dtype=np.int64,
    )
    if channel_of.shape != (num_vectors,):
        raise WorkloadError(
            f"strategy {strategy.name!r} returned shape {channel_of.shape}"
        )
    slot_of = np.zeros(num_vectors, dtype=np.int64)
    for channel in range(num_channels):
        members = np.flatnonzero(channel_of == channel)
        slot_of[members] = np.arange(len(members))
    logger.debug(
        "placement %s: %d vectors over %d channels (max/channel %d)",
        strategy.name, num_vectors, num_channels,
        int(np.bincount(channel_of, minlength=num_channels).max()),
    )
    return WeightPlacement(
        num_vectors=num_vectors,
        num_channels=num_channels,
        vector_bytes=vector_bytes,
        page_size=page_size,
        channel_of=channel_of,
        slot_of=slot_of,
        strategy_name=strategy.name,
    )
