"""Grade-based interleaving: the literal three-grade method of Fig. 7.

§5.3 describes bucketing vectors into *very hot / medium hot / not hot* and
interleaving by grade.  :class:`GradedInterleaving` implements exactly that:
within each tile, each grade's members are dealt round-robin across channels
(hot first), so every channel receives the same number of very-hot, medium,
and cold vectors — but without the fine-grained mass balancing of the LPT
strategy in :mod:`repro.layout.learned`.

It exists as an ablation point: how much of the learned strategy's win comes
from the coarse grading the paper illustrates versus the exact expected-load
balancing?  (`benchmarks/test_ablations.py` measures the gap.)
"""

from __future__ import annotations

import numpy as np

from ..errors import WorkloadError
from .learned import HotnessPredictor
from .placement import InterleavingStrategy


class GradedInterleaving(InterleavingStrategy):
    """Per-tile round-robin within the predictor's three hotness grades."""

    name = "graded"

    def __init__(self, predictor: HotnessPredictor) -> None:
        self.predictor = predictor

    def assign_channels(
        self, num_vectors: int, num_channels: int, tile_vectors: int
    ) -> np.ndarray:
        if num_vectors != len(self.predictor):
            raise WorkloadError(
                f"predictor covers {len(self.predictor)} vectors,"
                f" placement needs {num_vectors}"
            )
        if tile_vectors <= 0:
            raise WorkloadError("tile_vectors must be positive")
        grades = self.predictor.grades()
        scores = self.predictor.scores
        channels = np.empty(num_vectors, dtype=np.int64)
        for start in range(0, num_vectors, tile_vectors):
            stop = min(start + tile_vectors, num_vectors)
            channels[start:stop] = self._assign_tile(
                grades[start:stop], scores[start:stop], num_channels
            )
        return channels

    @staticmethod
    def _assign_tile(
        grades: np.ndarray, scores: np.ndarray, num_channels: int
    ) -> np.ndarray:
        """Deal each grade round-robin, hottest grade first.

        Within a grade, members go out in descending score so the hottest
        few still spread maximally; the round-robin cursor continues across
        grades so counts stay even overall.
        """
        assignment = np.empty(len(grades), dtype=np.int64)
        cursor = 0
        for grade in sorted(set(grades.tolist()), reverse=True):
            members = np.flatnonzero(grades == grade)
            members = members[np.argsort(scores[members])[::-1]]
            for index in members:
                assignment[index] = cursor % num_channels
                cursor += 1
        return assignment
