"""Learning-based adaptive interleaving (§5.3, Fig. 7).

Placement happens at deploy time, before any query arrives, so the framework
*predicts* how likely each 32-bit weight vector is to be selected as a
candidate — its **hot degree** — and balances that predicted load across the
channels of every tile:

1. **Grading** — the predictor computes the sum of absolute 4-bit codes of
   each projected weight vector (big-magnitude rows produce big approximate
   scores, hence survive thresholds more often) and buckets vectors into
   three grades: very hot / medium hot / not hot.
2. **Fine-tuning** — observed candidate frequencies from running the screener
   over a training set refine the raw score (a convex blend, weighted by how
   much training evidence exists).
3. **Balanced interleaving** — within each tile window (classification is
   tile-by-tile, and a tile's latency is its busiest channel), vectors are
   assigned to channels by greedy longest-processing-time scheduling on the
   fine-tuned scores, so every channel carries nearly the same expected
   candidate load for every tile.

The FTL's static logical-range-per-channel contract
(:meth:`repro.ssd.ftl.FlashTranslationLayer.channel_logical_range`) is what
makes step 3 implementable by a host-side framework: assigning a logical
address from channel *c*'s range pins the vector to channel *c*.
"""

from __future__ import annotations

import enum
import heapq
import logging
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import WorkloadError
from .placement import InterleavingStrategy

logger = logging.getLogger(__name__)


class HotGrade(enum.IntEnum):
    """The paper's three-way hotness classification."""

    NOT_HOT = 0
    MEDIUM_HOT = 1
    VERY_HOT = 2


@dataclass
class HotnessPredictor:
    """Predicts per-vector candidate likelihood from INT4 weight codes.

    ``abs_sums`` is the §5.3 signal (sum of |4-bit code| per vector).  After
    optional fine-tuning with observed candidate frequencies, ``scores``
    holds the blended estimate used for balancing and ``grades`` the
    three-way bucketing (top 10% very hot, next 30% medium, rest not hot,
    following the screening candidate-ratio regime).
    """

    abs_sums: np.ndarray
    very_hot_fraction: float = 0.10
    medium_hot_fraction: float = 0.30

    def __post_init__(self) -> None:
        self.abs_sums = np.asarray(self.abs_sums, dtype=np.float64)
        if self.abs_sums.ndim != 1:
            raise WorkloadError("abs_sums must be 1-D (one per weight vector)")
        if not (0 < self.very_hot_fraction < 1) or not (
            0 < self.medium_hot_fraction < 1
        ):
            raise WorkloadError("grade fractions must be in (0, 1)")
        total = self.abs_sums.sum()
        self.scores = (
            self.abs_sums / total
            if total > 0
            else np.full_like(self.abs_sums, 1.0 / max(1, len(self.abs_sums)))
        )
        self._fine_tuned = False

    def __len__(self) -> int:
        return len(self.abs_sums)

    @classmethod
    def from_quantized(cls, quantized, **kwargs) -> "HotnessPredictor":
        """Build from a :class:`repro.screening.QuantizedMatrix`."""
        return cls(abs_sums=quantized.abs_sum_per_row().astype(np.float64), **kwargs)

    def fine_tune(
        self, candidate_frequency: np.ndarray, observations: int
    ) -> None:
        """Blend in observed per-vector candidate frequencies (§5.3).

        ``candidate_frequency`` is the fraction of training queries that
        selected each vector; ``observations`` is the number of training
        queries, controlling how much the empirical signal outweighs the
        prior (frequencies from 10 queries are noisier than from 10,000).
        """
        frequency = np.asarray(candidate_frequency, dtype=np.float64)
        if frequency.shape != self.abs_sums.shape:
            raise WorkloadError("one frequency per weight vector is required")
        if observations < 0:
            raise WorkloadError("observations cannot be negative")
        if frequency.min() < 0 or frequency.max() > 1:
            raise WorkloadError("frequencies must lie in [0, 1]")
        weight = observations / (observations + 32.0)
        prior = self.scores / max(self.scores.sum(), 1e-30)
        freq_total = frequency.sum()
        empirical = frequency / freq_total if freq_total > 0 else prior
        self.scores = (1.0 - weight) * prior + weight * empirical
        self._fine_tuned = True
        logger.debug(
            "fine-tuned hotness predictor on %d observations (blend %.2f)",
            observations, weight,
        )

    @property
    def is_fine_tuned(self) -> bool:
        return self._fine_tuned

    def grades(self) -> np.ndarray:
        """Three-grade bucketing of the current scores."""
        n = len(self.scores)
        order = np.argsort(self.scores)[::-1]
        grades = np.full(n, HotGrade.NOT_HOT, dtype=np.int64)
        very = max(1, int(round(n * self.very_hot_fraction)))
        medium = max(1, int(round(n * self.medium_hot_fraction)))
        grades[order[:very]] = HotGrade.VERY_HOT
        grades[order[very : very + medium]] = HotGrade.MEDIUM_HOT
        return grades


class LearnedInterleaving(InterleavingStrategy):
    """Per-tile LPT balancing of predicted hot mass across channels."""

    name = "learned"

    def __init__(self, predictor: HotnessPredictor) -> None:
        self.predictor = predictor

    def assign_channels(
        self, num_vectors: int, num_channels: int, tile_vectors: int
    ) -> np.ndarray:
        if num_vectors != len(self.predictor):
            raise WorkloadError(
                f"predictor covers {len(self.predictor)} vectors,"
                f" placement needs {num_vectors}"
            )
        if tile_vectors <= 0:
            raise WorkloadError("tile_vectors must be positive")
        scores = self.predictor.scores
        channels = np.empty(num_vectors, dtype=np.int64)
        for start in range(0, num_vectors, tile_vectors):
            stop = min(start + tile_vectors, num_vectors)
            channels[start:stop] = self._balance_tile(
                scores[start:stop], num_channels
            )
        return channels

    @staticmethod
    def _balance_tile(scores: np.ndarray, num_channels: int) -> np.ndarray:
        """Greedy LPT: heaviest vector first onto the lightest channel.

        Ties break toward the channel with fewer vectors so counts stay
        even too (page-packing benefits from even counts).
        """
        order = np.argsort(scores)[::-1]
        assignment = np.empty(len(scores), dtype=np.int64)
        heap = [(0.0, 0, c) for c in range(num_channels)]
        heapq.heapify(heap)
        for index in order:
            load, count, channel = heapq.heappop(heap)
            assignment[index] = channel
            heapq.heappush(heap, (load + float(scores[index]), count + 1, channel))
        return assignment


def empirical_frequencies(
    candidates_per_query, num_vectors: int
) -> np.ndarray:
    """Per-vector selection frequency from a list of candidate index arrays."""
    counts = np.zeros(num_vectors, dtype=np.int64)
    queries = 0
    for selected in candidates_per_query:
        counts[np.asarray(selected, dtype=np.int64)] += 1
        queries += 1
    if queries == 0:
        return np.zeros(num_vectors, dtype=np.float64)
    return counts / queries
