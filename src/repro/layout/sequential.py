"""Sequential storing (§5.1): contiguous slabs of the matrix per channel.

The whole 32-bit weight matrix is divided into ``num_channels`` contiguous
index ranges, one per channel.  Because classification proceeds tile-by-tile
over contiguous label ranges, all of one tile's candidates usually live in a
single channel — the other channels idle, and channel-level bandwidth
utilization collapses (the paper measures <10%).
"""

from __future__ import annotations

import numpy as np

from .placement import InterleavingStrategy


class SequentialStoring(InterleavingStrategy):
    """Contiguous label ranges mapped to consecutive channels."""

    name = "sequential"

    def assign_channels(
        self, num_vectors: int, num_channels: int, tile_vectors: int
    ) -> np.ndarray:
        slab = -(-num_vectors // num_channels)
        channels = np.arange(num_vectors, dtype=np.int64) // slab
        return np.minimum(channels, num_channels - 1)
