"""Online re-interleaving: moving vectors when the placement goes stale.

The drift study shows a placement tuned at deploy time loses channel balance
as query hotness drifts; §5.3's framework can fix it because the FTL makes
"move vector v to channel c" a logical-address rewrite plus a data copy.
This module computes and prices that maintenance operation:

* :func:`diff_placements` — which vectors actually change channel between an
  old and a new placement (most don't: hotness drifts at the head);
* :class:`RemapPlan` — the move list plus its I/O cost: each moved vector is
  read from its old channel and programmed on its new one, overlapping
  channel work like any other flash traffic;
* :func:`remap_time` — the executor's makespan under per-channel read/
  program queues, so a maintenance window can be scheduled against the
  re-tuning benefit measured in the drift ablation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..config import ECSSDConfig
from ..errors import WorkloadError
from .placement import WeightPlacement


@dataclass(frozen=True)
class VectorMove:
    """One vector's relocation."""

    vector: int
    source_channel: int
    target_channel: int


@dataclass
class RemapPlan:
    """The set of moves turning ``old`` into ``new``."""

    moves: List[VectorMove] = field(default_factory=list)
    total_vectors: int = 0

    @property
    def moved_fraction(self) -> float:
        if self.total_vectors == 0:
            return 0.0
        return len(self.moves) / self.total_vectors

    def reads_per_channel(self, channels: int) -> np.ndarray:
        counts = np.zeros(channels, dtype=np.int64)
        for move in self.moves:
            counts[move.source_channel] += 1
        return counts

    def programs_per_channel(self, channels: int) -> np.ndarray:
        counts = np.zeros(channels, dtype=np.int64)
        for move in self.moves:
            counts[move.target_channel] += 1
        return counts


def diff_placements(old: WeightPlacement, new: WeightPlacement) -> RemapPlan:
    """Vectors whose channel changed between two placements."""
    if old.num_vectors != new.num_vectors:
        raise WorkloadError("placements cover different vector counts")
    if old.num_channels != new.num_channels:
        raise WorkloadError("placements target different channel counts")
    changed = np.flatnonzero(old.channel_of != new.channel_of)
    moves = [
        VectorMove(
            vector=int(v),
            source_channel=int(old.channel_of[v]),
            target_channel=int(new.channel_of[v]),
        )
        for v in changed
    ]
    return RemapPlan(moves=moves, total_vectors=old.num_vectors)


def remap_time(
    plan: RemapPlan,
    vector_bytes: int,
    config: Optional[ECSSDConfig] = None,
) -> float:
    """Makespan of executing a remap plan.

    Each channel serves its read queue and its program queue; reads stream
    at the channel rate, programs at the die-limited program rate.  The
    busiest channel sets the makespan (moves buffer through the device's
    DRAM, so reads and programs on *different* channels overlap freely).
    """
    if vector_bytes <= 0:
        raise WorkloadError("vector_bytes must be positive")
    config = config or ECSSDConfig()
    flash = config.flash
    channels = flash.channels
    pages_per_vector = max(1, -(-vector_bytes // flash.page_size))
    read_time_per_vector = pages_per_vector * max(
        flash.page_transfer_time, flash.read_latency / flash.dies_per_channel
    )
    program_time_per_vector = (
        pages_per_vector * flash.program_latency / flash.dies_per_channel
    )
    reads = plan.reads_per_channel(channels) * read_time_per_vector
    programs = plan.programs_per_channel(channels) * program_time_per_vector
    per_channel = reads + programs
    return float(per_channel.max()) if plan.moves else 0.0


def incremental_rebalance(
    placement: WeightPlacement,
    scores: np.ndarray,
    tolerance: float = 0.05,
    max_moves: Optional[int] = None,
) -> tuple:
    """Minimal-move rebalancing: fix imbalance without a full re-layout.

    A full LPT re-run relocates most of a tile even for small hotness
    perturbations (any reordering cascades).  This operator instead keeps
    the existing placement and greedily migrates vectors from the heaviest
    channel to the lightest until every channel is within ``tolerance`` of
    the mean predicted load — the maintenance loop an operator would
    actually run.

    Returns ``(new_channel_of, plan)``.
    """
    scores = np.asarray(scores, dtype=np.float64)
    if scores.shape != (placement.num_vectors,):
        raise WorkloadError("one score per vector is required")
    if tolerance <= 0:
        raise WorkloadError("tolerance must be positive")
    channels = placement.num_channels
    channel_of = placement.channel_of.copy()
    loads = np.zeros(channels, dtype=np.float64)
    for c in range(channels):
        loads[c] = scores[channel_of == c].sum()
    mean = loads.mean()
    moves: List[VectorMove] = []
    budget = max_moves if max_moves is not None else placement.num_vectors
    while len(moves) < budget:
        heavy = int(np.argmax(loads))
        light = int(np.argmin(loads))
        excess = loads[heavy] - mean
        if excess <= tolerance * mean or heavy == light:
            break
        members = np.flatnonzero(channel_of == heavy)
        if members.size == 0:
            break
        # Move the vector whose score best matches the excess (but no more
        # than the gap to the lightest channel, to avoid oscillation).
        gap = min(excess, mean - loads[light])
        if gap <= 0:
            break
        member_scores = scores[members]
        candidates = members[member_scores <= excess]
        if candidates.size == 0:
            candidates = members
        pick = candidates[np.argmin(np.abs(scores[candidates] - gap))]
        if scores[pick] <= 0:
            break
        channel_of[pick] = light
        loads[heavy] -= scores[pick]
        loads[light] += scores[pick]
        moves.append(
            VectorMove(vector=int(pick), source_channel=heavy, target_channel=light)
        )
    plan = RemapPlan(moves=moves, total_vectors=placement.num_vectors)
    return channel_of, plan


def evacuate_channels(
    placement: WeightPlacement,
    scores: np.ndarray,
    failed_channels: Sequence[int],
    max_moves: Optional[int] = None,
) -> tuple:
    """Move vectors off failed channels, hottest first, balancing survivors.

    The reliability counterpart of :func:`incremental_rebalance`: when the
    fault subsystem marks channels as failed (a stuck-offline window that
    outlives its deadline, or a die the scrub loop condemned), the hot
    32-bit vectors parked there must move or every query that screens them
    stalls.  Vectors evacuate in descending predicted-hotness order — under
    a bounded ``max_moves`` maintenance window the hottest data escapes
    first — and each lands on the currently lightest surviving channel.

    Returns ``(new_channel_of, plan)``.  Raises :class:`WorkloadError` when
    every channel has failed (there is nowhere left to put the data).
    """
    scores = np.asarray(scores, dtype=np.float64)
    if scores.shape != (placement.num_vectors,):
        raise WorkloadError("one score per vector is required")
    channels = placement.num_channels
    failed = sorted({int(c) for c in failed_channels})
    for c in failed:
        if not (0 <= c < channels):
            raise WorkloadError(f"failed channel {c} outside [0, {channels})")
    survivors = [c for c in range(channels) if c not in failed]
    if not survivors:
        raise WorkloadError("every channel failed; no destination for evacuation")
    channel_of = placement.channel_of.copy()
    loads = np.zeros(channels, dtype=np.float64)
    for c in survivors:
        loads[c] = scores[channel_of == c].sum()
    stranded = np.flatnonzero(np.isin(channel_of, failed))
    # Hottest first; ties broken by vector index for determinism.
    order = stranded[np.lexsort((stranded, -scores[stranded]))]
    budget = max_moves if max_moves is not None else order.size
    moves: List[VectorMove] = []
    for vector in order[:budget]:
        target = min(survivors, key=lambda c: (loads[c], c))
        moves.append(
            VectorMove(
                vector=int(vector),
                source_channel=int(channel_of[vector]),
                target_channel=target,
            )
        )
        channel_of[vector] = target
        loads[target] += scores[vector]
    plan = RemapPlan(moves=moves, total_vectors=placement.num_vectors)
    return channel_of, plan


def maintenance_summary(
    plan: RemapPlan,
    vector_bytes: int,
    config: Optional[ECSSDConfig] = None,
) -> dict:
    """Operator-facing numbers: moves, bytes, time, per-channel load."""
    config = config or ECSSDConfig()
    time = remap_time(plan, vector_bytes, config)
    return {
        "moves": len(plan.moves),
        "moved_fraction": plan.moved_fraction,
        "bytes_moved": len(plan.moves) * vector_bytes,
        "makespan_seconds": time,
        "reads_per_channel": plan.reads_per_channel(config.flash.channels).tolist(),
        "programs_per_channel": plan.programs_per_channel(
            config.flash.channels
        ).tolist(),
    }
