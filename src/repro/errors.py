"""Exception hierarchy for the ECSSD reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while still
distinguishing configuration mistakes from runtime device faults.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by :mod:`repro`."""


class ConfigurationError(ReproError):
    """A configuration value is missing, inconsistent, or out of range."""


class CapacityError(ReproError):
    """A placement or write would exceed a device's capacity."""


class AddressError(ReproError):
    """A logical or physical address is malformed or unmapped."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class ProtocolError(ReproError):
    """The ECSSD API was used out of order (e.g. inference before deploy)."""


class FormatError(ReproError):
    """CFP32 encoding/decoding received malformed data."""


class WorkloadError(ReproError):
    """A benchmark or synthetic workload request is invalid."""


class ObservabilityError(ReproError):
    """Telemetry recording or run-provenance bookkeeping failed.

    Raised when a bounded recorder would silently lose data (an in-memory
    tracer over its span cap with no streaming sink attached), a streaming
    sink is used after close, or a run manifest/registry lookup fails.
    """


class AblationError(ReproError):
    """An ablation campaign cannot be planned, executed, or scored.

    Raised for unknown runners, cell results that disagree with the
    spec-derived cell identity (a version or spec drift mid-campaign), and
    importance scoring over an incomplete result set.
    """
