"""Scale-out execution across multiple ECSSDs (§7.1).

When the classification layer outgrows a single device's DRAM (the 4-bit
matrix must stay resident), the layer is partitioned label-wise across
several ECSSDs that screen and classify their shards in parallel; the host
merges the per-device top-k lists.  The paper sizes a 500M-category layer at
5 devices; this module makes the plan executable:

* :func:`partition_labels` — contiguous label shards sized to the per-device
  DRAM budget;
* :class:`ScaleOutCluster` — N devices running the same trace-driven timing
  model on their shards; cluster latency is the slowest shard plus the
  host-side merge;
* top-k merging is exact: each device returns its local top-k, and the
  global top-k over the union of shards equals the top-k of the merged
  candidates (shards partition the label space).
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..config import ECSSDConfig
from ..errors import CapacityError, ConfigurationError
from ..obs import CLUSTER_TRACK, get_registry, get_tracer
from ..units import GiB

logger = logging.getLogger(__name__)
from ..workloads.benchmarks import BenchmarkSpec
from ..workloads.traces import CandidateTraceGenerator, LabelHotnessModel
from .ecssd import ECSSDevice, PerformanceReport
from .pipeline import PipelineFeatures

_DRAM_RESERVED = 256 * 1024 * 1024


@dataclass(frozen=True)
class LabelShard:
    """One device's contiguous slice of the label space."""

    device_index: int
    start: int
    stop: int

    @property
    def num_labels(self) -> int:
        return self.stop - self.start

    def __post_init__(self) -> None:
        if self.start < 0 or self.stop <= self.start:
            raise ConfigurationError(f"invalid shard bounds [{self.start}, {self.stop})")


def max_labels_per_device(
    spec: BenchmarkSpec, config: Optional[ECSSDConfig] = None
) -> int:
    """Largest shard whose 4-bit matrix fits one device's DRAM."""
    config = config or ECSSDConfig()
    usable = config.dram_capacity - _DRAM_RESERVED
    per_label = spec.int4_vector_bytes
    if per_label <= 0:
        raise ConfigurationError("benchmark has zero-byte INT4 vectors")
    limit = usable // per_label
    if limit <= 0:
        raise CapacityError("device DRAM cannot hold even one label's codes")
    return int(limit)


def partition_labels(
    spec: BenchmarkSpec,
    config: Optional[ECSSDConfig] = None,
    devices: Optional[int] = None,
) -> List[LabelShard]:
    """Split ``spec``'s label space into per-device shards.

    With ``devices=None`` the minimum feasible device count is used; an
    explicit count is validated against the DRAM budget.  Shards are
    near-equal so the parallel makespan stays balanced.
    """
    limit = max_labels_per_device(spec, config)
    needed = -(-spec.num_labels // limit)
    count = needed if devices is None else devices
    if count < needed:
        raise CapacityError(
            f"{count} devices cannot hold {spec.num_labels} labels"
            f" ({limit} per device max)"
        )
    base = spec.num_labels // count
    remainder = spec.num_labels % count
    shards: List[LabelShard] = []
    start = 0
    for index in range(count):
        size = base + (1 if index < remainder else 0)
        shards.append(LabelShard(device_index=index, start=start, stop=start + size))
        start += size
    return shards


@dataclass
class ClusterReport:
    """Timing of one scale-out inference."""

    shard_reports: List[PerformanceReport]
    merge_time: float

    @property
    def total_time(self) -> float:
        """Parallel shards + host merge."""
        return max(r.scaled_total_time for r in self.shard_reports) + self.merge_time

    @property
    def devices(self) -> int:
        return len(self.shard_reports)

    @property
    def slowest_shard(self) -> int:
        times = [r.scaled_total_time for r in self.shard_reports]
        return int(np.argmax(times))


class ScaleOutCluster:
    """N ECSSDs serving one partitioned extreme-classification layer."""

    def __init__(
        self,
        spec: BenchmarkSpec,
        devices: Optional[int] = None,
        config: Optional[ECSSDConfig] = None,
        features: PipelineFeatures = PipelineFeatures.full(),
        interleaving: str = "learned",
        host_merge_bandwidth: float = 10e9,
    ) -> None:
        self.spec = spec
        self.config = config or ECSSDConfig()
        self.shards = partition_labels(spec, self.config, devices)
        self.features = features
        self.interleaving = interleaving
        self.host_merge_bandwidth = host_merge_bandwidth
        self.devices: List[ECSSDevice] = []
        for shard in self.shards:
            device = ECSSDevice(
                config=self.config, features=features, interleaving=interleaving
            )
            device.deploy_spec(spec.scaled(shard.num_labels, f"shard{shard.device_index}"))
            self.devices.append(device)

    def run_trace(
        self,
        queries: int,
        sample_tiles: int = 8,
        top_k: int = 5,
        seed: int = 3,
    ) -> ClusterReport:
        """Trace-driven timing of one batch across every shard."""
        tracer = get_tracer()
        reports: List[PerformanceReport] = []
        with tracer.span(
            "cluster_run", devices=len(self.devices), queries=queries
        ):
            for shard, device in zip(self.shards, self.devices):
                hotness = LabelHotnessModel(
                    num_labels=shard.num_labels,
                    seed=seed + shard.device_index,
                )
                generator = CandidateTraceGenerator(
                    hotness,
                    candidate_ratio=self.spec.candidate_ratio,
                    query_noise=0.05,
                )
                with tracer.span(
                    f"shard{shard.device_index}",
                    labels=shard.num_labels,
                ) as span:
                    report = device.run_trace(
                        generator, queries=queries, sample_tiles=sample_tiles
                    )
                    span.set_sim_window(0.0, report.scaled_total_time)
                # Shards run in parallel on independent devices: overlay
                # their simulated windows on one cluster track.
                if tracer.enabled:
                    tracer.add_span(
                        f"shard{shard.device_index}",
                        0.0,
                        report.scaled_total_time,
                        track=CLUSTER_TRACK,
                        attrs={"labels": shard.num_labels},
                    )
                reports.append(report)
        # Host merge: each device returns top_k (label, score) pairs per
        # query (12 B each); merging is bandwidth-trivial but accounted.
        merge_bytes = queries * top_k * 12 * len(self.devices)
        merge_time = merge_bytes / self.host_merge_bandwidth
        registry = get_registry()
        if registry.enabled:
            registry.counter(
                "ecssd_cluster_runs_total", "scale-out inference passes"
            ).inc()
            registry.gauge(
                "ecssd_cluster_devices", "devices in the active cluster"
            ).set(len(self.devices))
        slowest = max(r.scaled_total_time for r in reports)
        if tracer.enabled:
            tracer.add_span(
                "merge", slowest, slowest + merge_time, track=CLUSTER_TRACK
            )
        logger.info(
            "cluster: %d shards, slowest %.6fs, merge %.6fs",
            len(reports), slowest, merge_time,
        )
        return ClusterReport(shard_reports=reports, merge_time=merge_time)


def merge_topk(
    shard_labels: Sequence[np.ndarray],
    shard_scores: Sequence[np.ndarray],
    shard_offsets: Sequence[int],
    top_k: int,
) -> tuple:
    """Exact global top-k from per-shard local top-k lists.

    Each shard reports (B, k) local labels/scores; labels are shard-local
    and get shifted by their shard's offset.  Because shards partition the
    label space, the global top-k is contained in the union of local
    top-k's — the merge is exact, not approximate.

    Ties rank under a *total* order on (score desc, global label id asc), so
    the result is independent of the order shards are listed in — a cluster
    merging replies as they arrive gets the same answer as one merging in
    shard-index order.
    """
    if not shard_labels:
        raise ConfigurationError("merge_topk needs at least one shard")
    if not (len(shard_labels) == len(shard_scores) == len(shard_offsets)):
        raise ConfigurationError("shard lists must align")
    labels = np.concatenate(
        [lab + off for lab, off in zip(shard_labels, shard_offsets)], axis=1
    )
    scores = np.concatenate(list(shard_scores), axis=1)
    batch = labels.shape[0]
    k = min(top_k, labels.shape[1])
    out_labels = np.empty((batch, k), dtype=np.int64)
    out_scores = np.empty((batch, k), dtype=scores.dtype)
    for q in range(batch):
        # lexsort: last key is primary — score descending, label ascending
        # breaks exact-score ties deterministically across shard orderings.
        order = np.lexsort((labels[q], -scores[q]))[:k]
        out_labels[q] = labels[q][order]
        out_scores[q] = scores[q][order]
    return out_labels, out_scores
