"""Host-facing ECSSD API (Table 1).

This facade exposes the paper's Python-style API verbatim — preparation
(``ecssd_enable``/``ecssd_disable``, ``pre_align``, ``weight_deploy``),
transmission (``int4_input_send``, ``cfp32_input_send``, ``get_results``),
and computation (``int4_screen``, ``cfp32_classify``, ``filter_threshold``)
— over an :class:`repro.core.ecssd.ECSSDevice`.  A small state machine
enforces the workflow order of §4.5 and raises
:class:`repro.errors.ProtocolError` on misuse.
"""

from __future__ import annotations

import enum
from typing import List, Optional

import numpy as np

from ..cfp32.format import CFP32Vector, prealign
from ..config import ECSSDConfig
from ..errors import ProtocolError
from ..screening.classifier import ClassificationResult
from ..screening.screener import ScreenResult
from .ecssd import ECSSDevice, PerformanceReport
from .pipeline import PipelineFeatures


class _Mode(enum.Enum):
    SSD = "ssd"
    ACCELERATOR = "accelerator"


class ECSSD:
    """The Table 1 API surface.

    Typical accelerator-mode session::

        dev = ECSSD()
        dev.ecssd_enable()
        dev.filter_threshold(None)          # or a calibrated value
        dev.weight_deploy(weights, train_features=calib)
        dev.cfp32_input_send(dev.pre_align(features))
        dev.int4_input_send(features)
        dev.int4_screen()
        dev.cfp32_classify()
        labels = dev.get_results()
    """

    def __init__(
        self,
        config: Optional[ECSSDConfig] = None,
        features: PipelineFeatures = PipelineFeatures.full(),
        interleaving: str = "learned",
    ) -> None:
        self.device = ECSSDevice(
            config=config, features=features, interleaving=interleaving
        )
        self._mode = _Mode.SSD
        self._deployed = False
        self._int4_inputs: Optional[np.ndarray] = None
        self._cfp32_inputs: Optional[List[CFP32Vector]] = None
        self._raw_features: Optional[np.ndarray] = None
        self._screen: Optional[ScreenResult] = None
        self._result: Optional[ClassificationResult] = None
        self._report: Optional[PerformanceReport] = None
        self._top_k = 5

    # --- preparation --------------------------------------------------------------
    def ecssd_enable(self) -> None:
        """Switch to accelerator mode (Table 1: ECSSD_enable)."""
        self._mode = _Mode.ACCELERATOR

    def ecssd_disable(self) -> None:
        """Switch back to plain SSD mode; accelerator state is dropped."""
        self._mode = _Mode.SSD
        self._int4_inputs = None
        self._cfp32_inputs = None
        self._screen = None
        self._result = None

    @property
    def mode(self) -> str:
        return self._mode.value

    def pre_align(self, data: np.ndarray) -> List[CFP32Vector]:
        """Host-side CFP32 pre-alignment of rows of ``data`` (Pre_align)."""
        data = np.atleast_2d(np.asarray(data, dtype=np.float32))
        return [prealign(row) for row in data]

    def weight_deploy(
        self,
        weights: np.ndarray,
        train_features: Optional[np.ndarray] = None,
        target_ratio: float = 0.10,
    ) -> None:
        """Deploy 4-bit + 32-bit weights into the device (Weight_deploy)."""
        self._require_accelerator_mode()
        self.device.deploy_model(
            weights, train_features=train_features, target_ratio=target_ratio
        )
        self._deployed = True

    def filter_threshold(self, threshold: Optional[float]) -> None:
        """Install the screening threshold (Filter_threshold).

        ``None`` keeps the threshold calibrated during ``weight_deploy``.
        """
        self._require_accelerator_mode()
        if threshold is not None:
            if self.device.model is None:
                raise ProtocolError("deploy weights before setting a threshold")
            self.device.model.set_threshold(threshold)

    # --- transmission ----------------------------------------------------------------
    def int4_input_send(self, features: np.ndarray) -> None:
        """Send the (to-be-projected) input batch for screening."""
        self._require_deployed()
        features = np.atleast_2d(np.asarray(features, dtype=np.float32))
        self._int4_inputs = features

    def cfp32_input_send(self, aligned: List[CFP32Vector]) -> None:
        """Send the pre-aligned full-precision input batch."""
        self._require_deployed()
        if not aligned:
            raise ProtocolError("cfp32_input_send needs at least one vector")
        self._cfp32_inputs = aligned

    def get_results(self) -> np.ndarray:
        """Fetch the final top-k label predictions (Get_results)."""
        if self._result is None:
            raise ProtocolError("run int4_screen and cfp32_classify first")
        return self._result.top_labels

    # --- computation ------------------------------------------------------------------
    def int4_screen(self) -> ScreenResult:
        """Run low-precision screening + filtering on the sent inputs."""
        self._require_deployed()
        if self._int4_inputs is None:
            raise ProtocolError("int4_input_send must run before int4_screen")
        model = self.device.model
        assert model is not None
        stats, report = self.device.run_inference(
            self._int4_inputs, top_k=self._top_k
        )
        # Screening and classification happen in one device pass; the API
        # splits them, so stash both halves.
        self._screen = stats.screen
        self._result = stats.result
        self._report = report
        return stats.screen

    def cfp32_classify(self) -> ClassificationResult:
        """Run candidate-only full-precision classification."""
        if self._screen is None or self._result is None:
            raise ProtocolError("int4_screen must run before cfp32_classify")
        if self._cfp32_inputs is None:
            raise ProtocolError("cfp32_input_send must run before cfp32_classify")
        return self._result

    # --- introspection -----------------------------------------------------------------
    @property
    def last_report(self) -> Optional[PerformanceReport]:
        """Timing report of the most recent inference pass."""
        return self._report

    def set_top_k(self, top_k: int) -> None:
        if top_k < 1:
            raise ProtocolError("top_k must be >= 1")
        self._top_k = top_k

    def _require_accelerator_mode(self) -> None:
        if self._mode is not _Mode.ACCELERATOR:
            raise ProtocolError("call ecssd_enable() first (device is in SSD mode)")

    def _require_deployed(self) -> None:
        self._require_accelerator_mode()
        if not self._deployed:
            raise ProtocolError("weight_deploy() must run first")
