"""Compute-side model of the inserted accelerator (Fig. 4, Table 2 bottom).

The accelerator holds a 256-unit INT4 MAC array (200 GOPS), a 64-unit FP32
MAC array (50 GFLOPS alignment-free / 29.2 GFLOPS naive at iso-area), a
threshold comparator, and a scheduler.  This module converts tile workloads
into compute latencies and exposes the Table 4 area/power numbers for the
chosen FP32 circuit design.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import AcceleratorConfig
from ..cfp32.circuits import AcceleratorAreaModel, MacCircuitModel, MacDesign
from ..errors import ConfigurationError


@dataclass
class AcceleratorModel:
    """Latency + area/power model of the inserted accelerator."""

    config: AcceleratorConfig = field(default_factory=AcceleratorConfig)
    fp32_design: MacDesign = MacDesign.ALIGNMENT_FREE

    @property
    def fp32_throughput(self) -> float:
        """Effective FP32 FLOP/s under the area budget for this design.

        The alignment-free design reaches the configured 50 GFLOPS; the
        naive design fits fewer MACs in the same silicon (§4.2's 29.2
        GFLOPS); the SK-Hynix design sits between (iso-area scaling of the
        circuit model's area ratio).
        """
        if self.fp32_design is MacDesign.ALIGNMENT_FREE:
            return self.config.fp32_throughput
        if self.fp32_design is MacDesign.NAIVE:
            return self.config.naive_fp32_throughput
        af = MacCircuitModel(MacDesign.ALIGNMENT_FREE).area_units
        skh = MacCircuitModel(MacDesign.SK_HYNIX).area_units
        return self.config.fp32_throughput * af / skh

    @property
    def int4_throughput(self) -> float:
        return self.config.int4_throughput

    # --- latencies --------------------------------------------------------------
    def int4_screen_time(self, tile_vectors: int, shrunk_dim: int, batch: int) -> float:
        """Time to screen one tile: batch x tile INT4 dot products.

        Includes the comparator pass (one compare per score), which is
        pipelined behind the MACs and adds one array-drain of slack.
        """
        self._check_positive(tile_vectors=tile_vectors, shrunk_dim=shrunk_dim, batch=batch)
        ops = 2.0 * batch * tile_vectors * shrunk_dim
        drain = self.config.int4_macs / self.config.frequency_hz
        return ops / self.int4_throughput + drain

    def fp32_classify_time(self, candidates: int, hidden_dim: int, batch: int) -> float:
        """Time to rank one tile's candidates in full precision."""
        self._check_positive(hidden_dim=hidden_dim, batch=batch)
        if candidates < 0:
            raise ConfigurationError("candidate count cannot be negative")
        if candidates == 0:
            return 0.0
        flops = 2.0 * batch * candidates * hidden_dim
        drain = self.config.fp32_macs / self.config.frequency_hz
        return flops / self.fp32_throughput + drain

    # --- tiling ------------------------------------------------------------------
    def tile_vectors_for(self, shrunk_dim: int) -> int:
        """Tile size set by the INT4 weight buffer (§4.5's weight tile).

        Packed INT4 vectors are ``shrunk_dim / 2`` bytes; the 128 KB weight
        buffer bounds how many fit one tile.
        """
        self._check_positive(shrunk_dim=shrunk_dim)
        bytes_per_vector = max(1, (shrunk_dim + 1) // 2)
        return max(1, self.config.int4_weight_buffer // bytes_per_vector)

    # --- silicon -------------------------------------------------------------------
    def area_model(self) -> AcceleratorAreaModel:
        return AcceleratorAreaModel(
            fp32_design=self.fp32_design, fp32_macs=self.config.fp32_macs
        )

    @property
    def total_area_mm2(self) -> float:
        return self.area_model().total_area_mm2

    @property
    def total_power_mw(self) -> float:
        return self.area_model().total_power_mw

    @staticmethod
    def _check_positive(**values: int) -> None:
        for name, value in values.items():
            if value <= 0:
                raise ConfigurationError(f"{name} must be positive, got {value}")
