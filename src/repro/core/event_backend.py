"""Event-simulated tile timing: the high-fidelity backend (DESIGN.md §5).

The analytic tile pipeline prices a tile's flash phase as ``max per-channel
pages x effective page time``.  This module runs the same tiles through the
event-driven SSD instead: every candidate page becomes a real flash command
with die sense, bus occupancy, queueing, and FTL command overhead; the
INT4 stream shares channels in homogeneous mode command-by-command.

It exists for validation and calibration: experiments use the analytic
model (it scales to 100M labels), and tests require the two backends to
agree on orderings and stay within a documented envelope on magnitudes
(`tests/test_event_backend.py`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..config import ECSSDConfig
from ..errors import ConfigurationError
from ..layout.placement import WeightPlacement
from ..lint.simsan import get_sanitizer
from ..obs.digest import DigestRecorder
from ..ssd.controller import CommandKind, FlashCommand
from ..ssd.device import SSDDevice
from .accelerator import AcceleratorModel
from .pipeline import PipelineFeatures


@dataclass
class EventTileTiming:
    """One tile's flash phase, event-simulated."""

    flash_makespan: float
    int4_fetch: float
    int4_compute: float
    fp32_compute: float
    cost: float
    pages_per_channel: np.ndarray


@dataclass
class EventRunResult:
    """Aggregate of an event-backed run."""

    total_time: float
    tiles: List[EventTileTiming]

    @property
    def flash_time_total(self) -> float:
        return sum(t.flash_makespan for t in self.tiles)


class EventBackedTiming:
    """Times tile workloads by submitting real flash commands.

    A fresh :class:`SSDDevice` hosts the run; candidate pages are written
    through the FTL once (deployment), then each tile's fetch replays as
    read commands on the per-channel controllers.
    """

    def __init__(
        self,
        config: Optional[ECSSDConfig] = None,
        features: PipelineFeatures = PipelineFeatures.full(),
        digest_recorder: Optional[DigestRecorder] = None,
    ) -> None:
        self.config = config or ECSSDConfig()
        self.features = features
        self.accelerator = AcceleratorModel(
            config=self.config.accelerator, fp32_design=features.mac_design
        )
        self.device = SSDDevice(self.config)
        self._written: Dict[int, bool] = {}
        # Provenance hook: ticked once per timed tile with the backend's
        # counters, so event-backed runs carry a digest track in their run
        # manifest (repro.obs.digest).
        self.digest_recorder = digest_recorder
        self._tiles_timed = 0
        self._commands_issued = 0

    # --- deployment -------------------------------------------------------------
    def deploy_tile(
        self, placement: WeightPlacement, tile_base_page: int = 0
    ) -> Dict[int, List[int]]:
        """Write a tile placement's pages through the FTL.

        Returns channel -> logical pages, offset so multiple tiles coexist.
        ``tile_base_page`` spaces tiles apart in each channel's logical range.
        """
        ftl = self.device.ftl
        lpas_by_channel: Dict[int, List[int]] = {}
        for channel in range(placement.num_channels):
            base = ftl.channel_logical_range(channel).start + tile_base_page
            count = placement.channel_pages(channel)
            lpas = [base + i for i in range(count)]
            for lpa in lpas:
                if not ftl.is_mapped(lpa):
                    ftl.write(lpa)
            lpas_by_channel[channel] = lpas
        return lpas_by_channel

    # --- tile timing --------------------------------------------------------------
    def time_tile(
        self,
        placement: WeightPlacement,
        candidates: np.ndarray,
        tile_base_page: int,
        batch: int,
        shrunk_dim: int,
        hidden_dim: int,
        int4_bytes: int,
    ) -> EventTileTiming:
        """Event-simulate one tile's candidate fetch + compute phases."""
        if batch <= 0:
            raise ConfigurationError("batch must be positive")
        lpas_by_channel = self.deploy_tile(placement, tile_base_page)
        page_lists = placement.fetch_page_lists(candidates)
        commands = []
        for channel, pages in page_lists.items():
            base_lpas = lpas_by_channel[channel]
            for page in pages:
                lpa = base_lpas[int(page)]
                commands.append(
                    FlashCommand(CommandKind.READ, self.device.ftl.lookup(lpa))
                )
        if self.features.heterogeneous:
            int4_fetch = int4_bytes / self.config.dram_bandwidth
        else:
            # INT4 pages interleave into the same channel queues.
            int4_pages = -(-int4_bytes // self.config.flash.page_size)
            per_channel = -(-int4_pages // self.config.flash.channels)
            for channel in range(self.config.flash.channels):
                base = self.device.ftl.channel_logical_range(channel).start
                for i in range(per_channel):
                    lpa = base + 500_000 + tile_base_page + i
                    if not self.device.ftl.is_mapped(lpa):
                        self.device.ftl.write(lpa)
                    commands.append(
                        FlashCommand(
                            CommandKind.READ, self.device.ftl.lookup(lpa)
                        )
                    )
            int4_fetch = 0.0  # folded into the flash makespan

        for channel in self.device.channels:
            channel.reset()
        result = self.device.fetch_pages(
            [command.address for command in commands], start=0.0
        )
        flash_makespan = result.makespan

        candidates_count = int(len(np.asarray(candidates)))
        int4_compute = self.accelerator.int4_screen_time(
            placement.num_vectors, shrunk_dim, batch
        )
        fp32_compute = self.accelerator.fp32_classify_time(
            candidates_count, hidden_dim, batch
        )
        if self.features.overlap:
            cost = max(flash_makespan, fp32_compute, max(int4_fetch, int4_compute))
        else:
            cost = int4_fetch + int4_compute + flash_makespan + fp32_compute
        sanitizer = get_sanitizer()
        if sanitizer.enabled:
            sanitizer.check_time("event_backend.flash_makespan", flash_makespan)
            sanitizer.check_time("event_backend.tile_cost", cost)
        pages = np.zeros(placement.num_channels, dtype=np.int64)
        for channel, page_list in page_lists.items():
            pages[channel] = len(page_list)
        self._tiles_timed += 1
        self._commands_issued += len(commands)
        if self.digest_recorder is not None:
            self.digest_recorder.tick(
                flash_makespan,
                tiles_timed=self._tiles_timed,
                commands_issued=self._commands_issued,
                candidates=candidates_count,
                batch=batch,
            )
        return EventTileTiming(
            flash_makespan=flash_makespan,
            int4_fetch=int4_fetch,
            int4_compute=int4_compute,
            fp32_compute=fp32_compute,
            cost=cost,
            pages_per_channel=pages,
        )

    def run(
        self,
        placements: List[WeightPlacement],
        candidate_sets: List[np.ndarray],
        batch: int,
        shrunk_dim: int,
        hidden_dim: int,
        int4_bytes: int,
        tile_spacing: int = 4096,
    ) -> EventRunResult:
        """Time a sequence of tiles (one placement + candidate set each)."""
        if len(placements) != len(candidate_sets):
            raise ConfigurationError("one candidate set per placement required")
        if not placements:
            raise ConfigurationError("run() needs at least one tile")
        timings = []
        for index, (placement, candidates) in enumerate(
            zip(placements, candidate_sets)
        ):
            timings.append(
                self.time_tile(
                    placement,
                    candidates,
                    tile_base_page=index * tile_spacing,
                    batch=batch,
                    shrunk_dim=shrunk_dim,
                    hidden_dim=hidden_dim,
                    int4_bytes=int4_bytes,
                )
            )
        total = sum(t.cost for t in timings) + self.config.flash.read_latency
        return EventRunResult(total_time=total, tiles=timings)
