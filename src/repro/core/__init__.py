"""ECSSD core: the inserted accelerator, the tile pipeline, and the device.

* :mod:`repro.core.accelerator` — compute-side model of the inserted
  accelerator (INT4 MAC array, alignment-free FP32 MAC array, comparator,
  scheduler) with Table 4 area/power.
* :mod:`repro.core.pipeline` — the tile-by-tile dual-module pipeline timing
  model (§4.5): ping-pong buffering, INT4/FP32 overlap, homogeneous-vs-
  heterogeneous transfer interference, per-channel fetch makespans.
* :mod:`repro.core.ecssd` — the assembled ECSSD device: deploy weights under
  a layout + interleaving choice, run functional inference (real screening on
  materialized workloads) or trace-driven timing at Table 3 scale.
* :mod:`repro.core.api` — the Table 1 host API.
"""

from .accelerator import AcceleratorModel
from .pipeline import (
    PipelineFeatures,
    TileWorkload,
    TileTiming,
    RunResult,
    TilePipelineModel,
)
from .ecssd import ECSSDevice, DeploymentInfo, PerformanceReport
from .api import ECSSD
from .deployment import DeploymentModel, DeploymentTiming
from .scaleout import ScaleOutCluster, LabelShard, partition_labels
from .batching import BatchingAnalyzer, BatchPoint, optimal_batch
from .protocol import Command, Response, Opcode, Status, DeviceFirmware, HostLink
from .event_backend import EventBackedTiming

__all__ = [
    "AcceleratorModel",
    "PipelineFeatures",
    "TileWorkload",
    "TileTiming",
    "RunResult",
    "TilePipelineModel",
    "ECSSDevice",
    "DeploymentInfo",
    "PerformanceReport",
    "ECSSD",
    "DeploymentModel",
    "DeploymentTiming",
    "ScaleOutCluster",
    "LabelShard",
    "partition_labels",
    "BatchingAnalyzer",
    "BatchPoint",
    "optimal_batch",
    "Command",
    "Response",
    "Opcode",
    "Status",
    "DeviceFirmware",
    "HostLink",
    "EventBackedTiming",
]
