"""Host-device command protocol: the wire under the Table 1 API (§4.4).

The paper's software library "coordinates the execution between the host and
the ECSSD"; concretely that means commands crossing the PCIe link as tagged
payloads the embedded processor's firmware dispatches on.  This module
implements that wire layer:

* :class:`Command` / :class:`Response` — tagged, byte-serializable messages
  with a 16-byte header (magic, opcode, tag, payload length) and CRC-32;
* :class:`DeviceFirmware` — the device-side interpreter: decodes commands,
  drives an :class:`repro.core.ecssd.ECSSDevice`, encodes responses, and
  rejects out-of-order or corrupt traffic the way real firmware must;
* :class:`HostLink` — a host-side convenience that pairs requests with
  responses by tag.

The high-level :class:`repro.core.api.ECSSD` facade stays the ergonomic
entry point; this layer exists so integration tests can exercise framing,
corruption, and protocol-state handling explicitly.
"""

from __future__ import annotations

import enum
import struct
import zlib
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..errors import ProtocolError
from .ecssd import ECSSDevice

MAGIC = 0xEC5D
_HEADER = struct.Struct("<HHIII")  # magic, opcode, tag, length, crc32


class Opcode(enum.IntEnum):
    """Command opcodes, one per Table 1 API entry plus transport basics."""

    ENABLE = 0x01
    DISABLE = 0x02
    DEPLOY = 0x10
    FILTER_THRESHOLD = 0x11
    INT4_INPUT = 0x20
    CFP32_INPUT = 0x21
    SCREEN = 0x30
    CLASSIFY = 0x31
    GET_RESULTS = 0x40


class Status(enum.IntEnum):
    """Response status codes the firmware returns."""

    OK = 0
    BAD_MAGIC = 1
    BAD_CRC = 2
    BAD_STATE = 3
    BAD_PAYLOAD = 4


@dataclass(frozen=True)
class Command:
    """One host->device message."""

    opcode: Opcode
    tag: int
    payload: bytes = b""

    def encode(self) -> bytes:
        if not (0 <= self.tag < 2**32):
            raise ProtocolError(f"tag {self.tag} outside uint32")
        crc = zlib.crc32(self.payload) & 0xFFFFFFFF
        header = _HEADER.pack(MAGIC, int(self.opcode), self.tag, len(self.payload), crc)
        return header + self.payload

    @classmethod
    def decode(cls, blob: bytes) -> "Command":
        if len(blob) < _HEADER.size:
            raise ProtocolError("message shorter than header")
        magic, opcode, tag, length, crc = _HEADER.unpack_from(blob)
        if magic != MAGIC:
            raise ProtocolError(f"bad magic 0x{magic:04x}")
        payload = blob[_HEADER.size : _HEADER.size + length]
        if len(payload) != length:
            raise ProtocolError("truncated payload")
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            raise ProtocolError("payload CRC mismatch")
        try:
            return cls(opcode=Opcode(opcode), tag=tag, payload=payload)
        except ValueError as exc:
            raise ProtocolError(f"unknown opcode 0x{opcode:02x}") from exc


@dataclass(frozen=True)
class Response:
    """One device->host message, paired to a command by tag."""

    tag: int
    status: Status
    payload: bytes = b""

    def encode(self) -> bytes:
        crc = zlib.crc32(self.payload) & 0xFFFFFFFF
        header = _HEADER.pack(MAGIC, int(self.status), self.tag, len(self.payload), crc)
        return header + self.payload

    @classmethod
    def decode(cls, blob: bytes) -> "Response":
        if len(blob) < _HEADER.size:
            raise ProtocolError("response shorter than header")
        magic, status, tag, length, crc = _HEADER.unpack_from(blob)
        if magic != MAGIC:
            raise ProtocolError(f"bad magic 0x{magic:04x}")
        payload = blob[_HEADER.size : _HEADER.size + length]
        if len(payload) != length or zlib.crc32(payload) & 0xFFFFFFFF != crc:
            raise ProtocolError("corrupt response")
        return cls(tag=tag, status=Status(status), payload=payload)


def _pack_array(array: np.ndarray) -> bytes:
    array = np.ascontiguousarray(array, dtype=np.float32)
    if array.ndim != 2:
        raise ValueError("protocol arrays must be 2-D")
    shape = struct.pack("<II", *array.shape)
    return shape + array.tobytes()


def _unpack_array(payload: bytes) -> np.ndarray:
    # Malformed payloads raise ValueError, which the firmware maps to
    # Status.BAD_PAYLOAD (vs ProtocolError -> BAD_STATE for ordering).
    if len(payload) < 8:
        raise ValueError("array payload shorter than its shape header")
    rows, cols = struct.unpack_from("<II", payload)
    expected = 8 + rows * cols * 4
    if len(payload) != expected:
        raise ValueError("array payload length mismatch")
    return np.frombuffer(payload, dtype=np.float32, offset=8).reshape(rows, cols).copy()


class DeviceFirmware:
    """Device-side command interpreter over an :class:`ECSSDevice`."""

    def __init__(self, device: Optional[ECSSDevice] = None, top_k: int = 5) -> None:
        self.device = device or ECSSDevice()
        self.top_k = top_k
        self.accelerator_mode = False
        self._features: Optional[np.ndarray] = None
        self._cfp32_received = False
        self._screened = False
        self._results: Optional[np.ndarray] = None

    def handle(self, blob: bytes) -> bytes:
        """Decode one command, execute it, return the encoded response."""
        try:
            command = Command.decode(blob)
        except ProtocolError as exc:
            status = Status.BAD_CRC if "CRC" in str(exc) else Status.BAD_MAGIC
            return Response(tag=0, status=status).encode()
        try:
            payload = self._dispatch(command)
        except ProtocolError:
            return Response(tag=command.tag, status=Status.BAD_STATE).encode()
        except Exception:
            return Response(tag=command.tag, status=Status.BAD_PAYLOAD).encode()
        return Response(tag=command.tag, status=Status.OK, payload=payload).encode()

    def _dispatch(self, command: Command) -> bytes:
        op = command.opcode
        if op is Opcode.ENABLE:
            self.accelerator_mode = True
            return b""
        if op is Opcode.DISABLE:
            self.accelerator_mode = False
            self._features = None
            self._screened = False
            self._results = None
            return b""
        if not self.accelerator_mode:
            raise ProtocolError("device is in SSD mode")
        if op is Opcode.DEPLOY:
            weights = _unpack_array(command.payload)
            self.device.deploy_model(weights)
            self.device.model.set_threshold(float("-inf"))
            return b""
        if op is Opcode.FILTER_THRESHOLD:
            (value,) = struct.unpack("<f", command.payload)
            if self.device.model is None:
                raise ProtocolError("deploy before setting a threshold")
            self.device.model.set_threshold(value)
            return b""
        if op is Opcode.INT4_INPUT:
            self._require_deployed()
            self._features = _unpack_array(command.payload)
            self._screened = False
            return b""
        if op is Opcode.CFP32_INPUT:
            self._require_deployed()
            # CFP32 inputs arrive pre-aligned; functionally identical data.
            self._cfp32_received = True
            return b""
        if op is Opcode.SCREEN:
            self._require_deployed()
            if self._features is None:
                raise ProtocolError("no input batch")
            stats, _report = self.device.run_inference(
                self._features, top_k=self.top_k
            )
            self._results = stats.result.top_labels
            self._screened = True
            ratio = np.float32(stats.candidate_ratio)
            return struct.pack("<f", float(ratio))
        if op is Opcode.CLASSIFY:
            if not self._screened:
                raise ProtocolError("screen before classify")
            if not self._cfp32_received:
                raise ProtocolError("CFP32 inputs not sent")
            return b""
        if op is Opcode.GET_RESULTS:
            if self._results is None:
                raise ProtocolError("no results available")
            labels = self._results.astype(np.int64)
            header = struct.pack("<II", *labels.shape)
            return header + labels.tobytes()
        raise ProtocolError(f"unhandled opcode {op}")  # pragma: no cover

    def _require_deployed(self) -> None:
        if self.device.model is None:
            raise ProtocolError("weights not deployed")


class HostLink:
    """Host-side request/response pairing over a :class:`DeviceFirmware`."""

    def __init__(self, firmware: Optional[DeviceFirmware] = None) -> None:
        self.firmware = firmware or DeviceFirmware()
        self._next_tag = 1
        self.history: Dict[int, Status] = {}

    def call(self, opcode: Opcode, payload: bytes = b"") -> Response:
        tag = self._next_tag
        self._next_tag += 1
        response = Response.decode(
            self.firmware.handle(Command(opcode, tag, payload).encode())
        )
        if response.tag not in (tag, 0):
            raise ProtocolError(
                f"response tag {response.tag} does not match request {tag}"
            )
        self.history[tag] = response.status
        return response

    # --- typed helpers ------------------------------------------------------------
    def deploy(self, weights: np.ndarray) -> Response:
        return self.call(Opcode.DEPLOY, _pack_array(weights))

    def send_inputs(self, features: np.ndarray) -> Response:
        self.call(Opcode.CFP32_INPUT, _pack_array(features))
        return self.call(Opcode.INT4_INPUT, _pack_array(features))

    def get_results(self) -> np.ndarray:
        response = self.call(Opcode.GET_RESULTS)
        if response.status is not Status.OK:
            raise ProtocolError(f"GET_RESULTS failed: {response.status.name}")
        rows, cols = struct.unpack_from("<II", response.payload)
        return np.frombuffer(
            response.payload, dtype=np.int64, offset=8
        ).reshape(rows, cols).copy()
