"""Tile-by-tile dual-module pipeline timing model (§4.5).

Inference is tile-periodic: each tile screens ``tile_vectors`` labels with
INT4 weights, filters candidates, fetches their CFP32 vectors from flash,
and ranks them in FP32.  This module turns per-tile workloads into time,
honoring the four design knobs the paper ablates:

* **MAC design** — naive / SK-Hynix / alignment-free FP32 throughput
  (compute may or may not hide under transfer);
* **layout** — heterogeneous (INT4 from DRAM) vs homogeneous (INT4 pages
  share the flash channels with candidate fetches: transfer interference);
* **interleaving** — enters through each tile's per-channel page counts
  (the busiest channel sets the fetch makespan);
* **overlap** — the §4.5 scheduler runs the INT4 module on tile *t+1* while
  the FP32 module processes tile *t*, ping-pong buffered; without it the
  four phases serialize.

Steady-state flash streaming is bus-limited (sense pipelines across a
channel's dies), so a channel's fetch time is ``pages x effective page
time``; one initial sense latency is charged per run, not per tile.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Iterable, List, Optional

import numpy as np

from ..cfp32.circuits import MacDesign
from ..config import ECSSDConfig
from ..errors import ConfigurationError, SimulationError
from ..obs import FP32_TRACK, INT4_TRACK, PIPELINE_TRACK, get_registry, get_tracer
from .accelerator import AcceleratorModel

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class PipelineFeatures:
    """Which ECSSD techniques are enabled (the Fig. 8 ablation axes)."""

    mac_design: MacDesign = MacDesign.ALIGNMENT_FREE
    heterogeneous: bool = True
    overlap: bool = True
    label: str = "ecssd"

    @classmethod
    def baseline(cls) -> "PipelineFeatures":
        """Fig. 8's starting point: naive MAC, homogeneous, serial phases."""
        return cls(
            mac_design=MacDesign.NAIVE,
            heterogeneous=False,
            overlap=False,
            label="baseline",
        )

    @classmethod
    def full(cls) -> "PipelineFeatures":
        """All ECSSD techniques on."""
        return cls()


@dataclass
class TileWorkload:
    """One tile's data movement and compute demands."""

    tile_vectors: int
    shrunk_dim: int
    hidden_dim: int
    batch: int
    candidates: int
    fp32_pages_per_channel: np.ndarray  # (C,) pages of candidate data
    int4_pages_per_channel: Optional[np.ndarray] = None  # (C,) when in flash
    int4_bytes: int = 0  # packed INT4 tile bytes (DRAM path)

    def __post_init__(self) -> None:
        self.fp32_pages_per_channel = np.asarray(
            self.fp32_pages_per_channel, dtype=np.int64
        )
        if self.int4_pages_per_channel is not None:
            self.int4_pages_per_channel = np.asarray(
                self.int4_pages_per_channel, dtype=np.int64
            )
            if (
                self.int4_pages_per_channel.shape
                != self.fp32_pages_per_channel.shape
            ):
                raise ConfigurationError("int4/fp32 channel arrays differ in shape")
        if self.tile_vectors <= 0 or self.batch <= 0:
            raise ConfigurationError("tile_vectors and batch must be positive")
        if self.candidates < 0:
            raise ConfigurationError("candidates cannot be negative")


@dataclass
class TileTiming:
    """Phase latencies of one tile under a feature set."""

    int4_fetch: float
    int4_compute: float
    fp32_fetch: float
    fp32_compute: float
    cost: float  # contribution to total run time (steady state)
    fp32_busy: float  # channel-seconds of pure FP32 page transfer
    fp32_max_pages: int
    fp32_total_pages: int


@dataclass
class RunResult:
    """Aggregate of one inference run through the pipeline."""

    features: PipelineFeatures
    total_time: float
    tiles: int
    channels: int
    fp32_bytes: int
    fp32_busy: float
    host_time: float = 0.0
    tile_time_total: float = 0.0  # sum of steady-state tile costs only
    overhead_time: float = 0.0  # one-time costs: sense fill, pipeline fill, host
    tile_timings: List[TileTiming] = field(default_factory=list)

    @property
    def fp32_channel_utilization(self) -> float:
        """FP32 channel-bandwidth utilization over the run (Fig. 8 metric).

        Measured over steady-state tile processing (one-time fill/host
        overheads excluded — they vanish at full benchmark scale anyway).
        """
        window = self.tile_time_total if self.tile_time_total > 0 else self.total_time
        if window <= 0:
            return 0.0
        return self.fp32_busy / (self.channels * window)

    def speedup_over(self, other: "RunResult") -> float:
        """How much faster this run is than ``other``."""
        if self.total_time <= 0:
            raise SimulationError("cannot compute speedup of a zero-time run")
        return other.total_time / self.total_time


class TilePipelineModel:
    """Turns tile workloads into end-to-end time for a feature set."""

    # Penalty on a channel that carries both the INT4 stream and candidate
    # fetches (homogeneous layout with overlap).  Interleaving a sequential
    # stream into a random-read queue breaks die pipelining: the event-level
    # simulator measures >= 1.13x beyond additive page counts from die
    # conflicts alone; the analytic value also folds in the controller
    # scheduling effects MQSim resolves, calibrated against Fig. 10.
    INTERFERENCE_PENALTY = 1.25

    def __init__(
        self,
        config: Optional[ECSSDConfig] = None,
        accelerator: Optional[AcceleratorModel] = None,
        features: PipelineFeatures = PipelineFeatures.full(),
        interference_penalty: float = INTERFERENCE_PENALTY,
    ) -> None:
        self.config = config or ECSSDConfig()
        self.features = features
        if interference_penalty < 1.0:
            raise ConfigurationError("interference penalty cannot be < 1")
        self.interference_penalty = interference_penalty
        self.accelerator = accelerator or AcceleratorModel(
            config=self.config.accelerator, fp32_design=features.mac_design
        )
        if self.accelerator.fp32_design is not features.mac_design:
            raise ConfigurationError(
                "accelerator MAC design must match pipeline features"
            )

    # --- per-channel timing ---------------------------------------------------------
    @property
    def effective_page_time(self) -> float:
        """Per-page streaming cost on one channel (bus- or sense-limited)."""
        flash = self.config.flash
        sense_limited = flash.read_latency / flash.dies_per_channel
        return max(flash.page_transfer_time, sense_limited)

    @property
    def channels(self) -> int:
        return self.config.flash.channels

    # --- tile timing -------------------------------------------------------------------
    def tile_timing(self, tile: TileWorkload) -> TileTiming:
        """Phase latencies and steady-state cost of one tile."""
        page_time = self.effective_page_time
        fp32_pages = tile.fp32_pages_per_channel
        if len(fp32_pages) != self.channels:
            raise ConfigurationError(
                f"tile has {len(fp32_pages)} channels, device has {self.channels}"
            )

        # INT4 weight fetch: DRAM (heterogeneous) or flash (homogeneous).
        if self.features.heterogeneous:
            int4_fetch = tile.int4_bytes / self.config.dram_bandwidth
            int4_flash = np.zeros_like(fp32_pages)
        else:
            if tile.int4_pages_per_channel is None:
                raise ConfigurationError(
                    "homogeneous layout requires int4_pages_per_channel"
                )
            int4_flash = tile.int4_pages_per_channel
            int4_fetch = float(int4_flash.max()) * page_time

        int4_compute = self.accelerator.int4_screen_time(
            tile.tile_vectors, tile.shrunk_dim, tile.batch
        )
        fp32_compute = self.accelerator.fp32_classify_time(
            tile.candidates, tile.hidden_dim, tile.batch
        )

        if self.features.overlap and not self.features.heterogeneous:
            # Interference: next tile's INT4 pages share the buses with this
            # tile's candidate fetch; beyond the extra pages, mixing the
            # sequential and random streams breaks die pipelining.
            combined = fp32_pages + int4_flash
            fp32_fetch = (
                float(combined.max()) * page_time * self.interference_penalty
            )
        else:
            fp32_fetch = float(fp32_pages.max()) * page_time

        if self.features.overlap:
            # Dual-module pipeline: INT4 side of tile t+1 runs under the FP32
            # side of tile t; ping-pong overlaps fetch with compute.
            int4_side = max(int4_fetch, int4_compute)
            if self.features.heterogeneous:
                fp32_side = max(fp32_fetch, fp32_compute)
            else:
                # INT4 fetch already folded into the flash makespan above.
                fp32_side = max(fp32_fetch, fp32_compute)
                int4_side = int4_compute
            cost = max(int4_side, fp32_side)
        else:
            cost = int4_fetch + int4_compute + fp32_fetch + fp32_compute

        total_pages = int(fp32_pages.sum())
        busy = total_pages * self.config.flash.page_transfer_time
        return TileTiming(
            int4_fetch=int4_fetch,
            int4_compute=int4_compute,
            fp32_fetch=fp32_fetch,
            fp32_compute=fp32_compute,
            cost=cost,
            fp32_busy=busy,
            fp32_max_pages=int(fp32_pages.max()),
            fp32_total_pages=total_pages,
        )

    # --- telemetry -------------------------------------------------------------------------
    def _record_tile(
        self,
        registry,
        tracer,
        tile: TileWorkload,
        timing: TileTiming,
        cursor: float,
        index: int,
    ) -> None:
        """Emit one tile's metrics and phase spans at sim offset ``cursor``.

        Purely observational — never feeds back into the timing math, so a
        run with recorders installed reports bit-identical times.
        """
        if registry.enabled:
            registry.histogram(
                "ecssd_tile_latency_seconds",
                "steady-state cost of one pipeline tile",
            ).observe(timing.cost)
            pages = registry.counter(
                "ecssd_pages_fetched_total",
                "FP32 candidate pages fetched, by channel",
            )
            for channel, count in enumerate(tile.fp32_pages_per_channel):
                if count:
                    pages.inc(int(count), channel=channel)
        if tracer.enabled:
            name = f"tile{index}"
            end = cursor + timing.cost
            tile_attrs = {
                "index": index,
                "candidates": tile.candidates,
                "fp32_pages": timing.fp32_total_pages,
                "fp32_max_pages": timing.fp32_max_pages,
            }
            # Resource tags for the critical-path profiler: where each phase
            # physically runs under this feature set.
            int4_fetch_resource = (
                "dram" if self.features.heterogeneous else "flash"
            )
            if self.features.overlap and not self.features.heterogeneous:
                # Homogeneous shared-channel fetch: record the §4.3 penalty
                # seconds actually paid beyond the additive page counts.
                tile_attrs["interference_penalty_s"] = timing.fp32_fetch * (
                    1.0 - 1.0 / self.interference_penalty
                )
            tracer.add_span(name, cursor, end, track=PIPELINE_TRACK,
                            attrs=tile_attrs)
            if self.features.overlap:
                # Dual-module layout: both sides start with the tile window;
                # within a side, fetch streams underneath compute.
                tracer.add_span(
                    f"{name}/int4_fetch", cursor, cursor + timing.int4_fetch,
                    track=INT4_TRACK,
                    attrs={"resource": int4_fetch_resource},
                )
                tracer.add_span(
                    f"{name}/int4_compute", cursor, cursor + timing.int4_compute,
                    track=INT4_TRACK, attrs={"resource": "int4-acc"},
                )
                tracer.add_span(
                    f"{name}/fp32_fetch", cursor, cursor + timing.fp32_fetch,
                    track=FP32_TRACK, attrs={"resource": "flash"},
                )
                tracer.add_span(
                    f"{name}/fp32_compute", cursor, cursor + timing.fp32_compute,
                    track=FP32_TRACK, attrs={"resource": "fp32-acc"},
                )
            else:
                # Serial phases: lay them end to end inside the tile window.
                t = cursor
                for phase, duration, track, resource in (
                    ("int4_fetch", timing.int4_fetch, INT4_TRACK,
                     int4_fetch_resource),
                    ("int4_compute", timing.int4_compute, INT4_TRACK,
                     "int4-acc"),
                    ("fp32_fetch", timing.fp32_fetch, FP32_TRACK, "flash"),
                    ("fp32_compute", timing.fp32_compute, FP32_TRACK,
                     "fp32-acc"),
                ):
                    tracer.add_span(
                        f"{name}/{phase}", t, t + duration, track=track,
                        attrs={"resource": resource},
                    )
                    t += duration

    # --- run-level aggregation -------------------------------------------------------------
    def simulate(
        self,
        tiles: Iterable[TileWorkload],
        host_bytes_in: int = 0,
        host_bytes_out: int = 0,
        keep_timings: bool = False,
    ) -> RunResult:
        """Aggregate tile costs into an end-to-end run time.

        ``host_bytes_in/out`` are the per-run input-feature upload and
        result download (they overlap tile processing only partially: the
        first batch upload is serial, so the full transfer is charged —
        conservative and identical across compared configurations).
        """
        registry = get_registry()
        tracer = get_tracer()
        observing = registry.enabled or tracer.enabled
        total = 0.0
        busy = 0.0
        fp32_bytes = 0
        count = 0
        timings: List[TileTiming] = []
        fill = 0.0
        fill_resource = "int4-acc"
        for tile in tiles:
            timing = self.tile_timing(tile)
            if observing:
                self._record_tile(registry, tracer, tile, timing, total, count)
            total += timing.cost
            busy += timing.fp32_busy
            fp32_bytes += timing.fp32_total_pages * self.config.flash.page_size
            count += 1
            if count == 1 and self.features.overlap:
                # Pipeline fill: the first tile's INT4 side cannot hide.
                fill = max(timing.int4_fetch, timing.int4_compute)
                if timing.int4_fetch > timing.int4_compute:
                    fill_resource = (
                        "dram" if self.features.heterogeneous else "flash"
                    )
            if keep_timings:
                timings.append(timing)
        if count == 0:
            raise SimulationError("simulate() needs at least one tile")
        tile_time_total = total
        host_time = (
            host_bytes_in / self.config.host_bandwidth
            + host_bytes_out / self.config.host_bandwidth
        )
        # One initial sense latency per run (steady-state streaming after).
        overhead = self.config.flash.read_latency + fill + host_time
        total += overhead
        if observing:
            tracer.add_span(
                "run_overhead",
                tile_time_total,
                total,
                track=PIPELINE_TRACK,
                attrs={
                    "sense_fill": self.config.flash.read_latency,
                    "pipeline_fill": fill,
                    "fill_resource": fill_resource,
                    "host_time": host_time,
                },
            )
            logger.info(
                "pipeline %s: %d tiles in %.6fs (steady %.6fs, overhead %.6fs)",
                self.features.label, count, total, tile_time_total, overhead,
            )
        return RunResult(
            features=self.features,
            total_time=total,
            tiles=count,
            channels=self.channels,
            fp32_bytes=fp32_bytes,
            fp32_busy=busy,
            host_time=host_time,
            tile_time_total=tile_time_total,
            overhead_time=overhead,
            tile_timings=timings,
        )
