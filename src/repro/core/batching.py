"""Query batching policy: the knob behind the roofline (§4.5, Fig. 1).

Each fetched candidate weight vector serves *every* query in the batch, so
batch size B sets the operational intensity (2B/4 FLOP per fetched byte):

* B too small — the FP32 MAC array idles; even the alignment-free design
  cannot hide compute under transfer, and per-query data movement is high
  (each batch re-fetches the hot candidates);
* B too large — compute becomes the bottleneck again (the roofline's
  corner is at B* where ``required GFLOPS == MAC peak``), and queuing
  latency grows since a batch must fill before it runs.

:class:`BatchingAnalyzer` computes per-batch latency, per-query throughput,
and the queue wait at a given arrival rate; :func:`optimal_batch` locates
the knee.  The batch-sweep ablation bench plots the curve.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..config import ECSSDConfig
from ..core.pipeline import PipelineFeatures, TilePipelineModel, TileWorkload
from ..errors import ConfigurationError
from ..obs import get_registry, get_tracer

logger = logging.getLogger(__name__)
from ..workloads.benchmarks import BenchmarkSpec
from ..workloads.traces import CandidateTraceGenerator


@dataclass(frozen=True)
class BatchPoint:
    """Steady-state behaviour at one batch size."""

    batch: int
    batch_time: float
    queries_per_second: float
    compute_bound_fraction: float  # fraction of tiles limited by FP32 MACs
    queue_wait: float  # mean fill wait at the given arrival rate

    @property
    def mean_latency(self) -> float:
        """Queueing + processing latency one query observes."""
        return self.queue_wait + self.batch_time


class BatchingAnalyzer:
    """Sweeps batch size for a benchmark on the full-feature pipeline."""

    def __init__(
        self,
        spec: BenchmarkSpec,
        generator: CandidateTraceGenerator,
        config: Optional[ECSSDConfig] = None,
        sample_tiles: int = 8,
    ) -> None:
        if sample_tiles <= 0:
            raise ConfigurationError("sample_tiles must be positive")
        self.spec = spec
        self.generator = generator
        self.config = config or ECSSDConfig()
        self.sample_tiles = sample_tiles
        self.pipeline = TilePipelineModel(
            config=self.config, features=PipelineFeatures.full()
        )

    def _tile_vectors(self) -> int:
        from ..core.accelerator import AcceleratorModel

        return AcceleratorModel(config=self.config.accelerator).tile_vectors_for(
            self.spec.shrunk_dim
        )

    def evaluate(self, batch: int, arrival_rate: float = 0.0) -> BatchPoint:
        """Timing at one batch size.

        ``arrival_rate`` (queries/s) sets the batch-fill wait: the first
        query of a batch waits for ``batch - 1`` more arrivals, a mean of
        ``(batch - 1) / (2 * rate)``; 0 means an always-full queue.
        """
        if batch <= 0:
            raise ConfigurationError("batch must be positive")
        if arrival_rate < 0:
            raise ConfigurationError("arrival_rate cannot be negative")
        tile_vectors = self._tile_vectors()
        int4_tile_bytes = tile_vectors * ((self.spec.shrunk_dim + 1) // 2)
        total_tiles = -(-self.spec.num_labels // tile_vectors)
        tiles: List[TileWorkload] = []
        compute_bound = 0
        for t in range(min(self.sample_tiles, total_tiles)):
            trace = self.generator.tile_trace(t, tile_vectors, num_queries=batch)
            union = np.unique(np.concatenate(trace.candidates))
            # Learned placement at calibrated quality: near-balanced pages.
            pages = self._balanced_pages(len(union))
            tiles.append(
                TileWorkload(
                    tile_vectors=tile_vectors,
                    shrunk_dim=self.spec.shrunk_dim,
                    hidden_dim=self.spec.hidden_dim,
                    batch=batch,
                    candidates=int(np.mean([len(c) for c in trace.candidates])),
                    fp32_pages_per_channel=pages,
                    int4_bytes=int4_tile_bytes,
                )
            )
        tracer = get_tracer()
        with tracer.span(
            "batch_evaluate", batch=batch, benchmark=self.spec.name
        ) as span:
            result = self.pipeline.simulate(tiles)
            span.set_sim_window(0.0, result.total_time)
        for timing in (self.pipeline.tile_timing(t) for t in tiles):
            if timing.fp32_compute > timing.fp32_fetch:
                compute_bound += 1
        scale = total_tiles / len(tiles)
        batch_time = result.tile_time_total * scale + result.overhead_time
        wait = 0.0 if arrival_rate == 0 else (batch - 1) / (2.0 * arrival_rate)
        registry = get_registry()
        if registry.enabled:
            registry.histogram(
                "ecssd_batch_time_seconds", "end-to-end batch latency by size"
            ).observe(batch_time, batch=batch)
        logger.debug(
            "batch %d on %s: %.6fs/batch, %.1f qps",
            batch, self.spec.name, batch_time, batch / batch_time,
        )
        return BatchPoint(
            batch=batch,
            batch_time=batch_time,
            queries_per_second=batch / batch_time,
            compute_bound_fraction=compute_bound / len(tiles),
            queue_wait=wait,
        )

    def _balanced_pages(self, union_size: int) -> np.ndarray:
        channels = self.config.flash.channels
        vector_bytes = 4 * self.spec.hidden_dim
        page_size = self.config.flash.page_size
        if vector_bytes >= page_size:
            pages_total = union_size * (-(-vector_bytes // page_size))
        else:
            per_page = page_size // vector_bytes
            pages_total = -(-union_size // per_page)
        base = pages_total // channels
        pages = np.full(channels, base, dtype=np.int64)
        pages[: pages_total % channels] += 1
        # Calibrated learned-interleaving balance (~0.91): the busiest
        # channel carries ~10% more than the mean.
        pages[0] = max(pages[0], int(round(pages.mean() / 0.91)))
        return pages

    def sweep(
        self, batches: Sequence[int], arrival_rate: float = 0.0
    ) -> List[BatchPoint]:
        return [self.evaluate(b, arrival_rate) for b in batches]


def optimal_batch(points: Sequence[BatchPoint]) -> BatchPoint:
    """Highest-throughput point; ties break toward smaller batches.

    Past the roofline corner throughput saturates while latency keeps
    climbing, so the smallest batch within 2% of peak is "optimal".
    """
    if not points:
        raise ConfigurationError("optimal_batch needs at least one point")
    peak = max(p.queries_per_second for p in points)
    near_peak = [p for p in points if p.queries_per_second >= 0.98 * peak]
    return min(near_peak, key=lambda p: p.batch)
