"""The assembled ECSSD device: deployment + inference, functional and at scale.

Two usage modes mirror how the experiments need the device:

* **Functional** (:meth:`ECSSDevice.deploy_model` /
  :meth:`ECSSDevice.run_inference`) — a materialized weight matrix is
  screened for real: the approximate screening model produces actual
  candidates and predictions, the layout engine places actual vectors, and
  the pipeline times the actual per-channel page loads.  Used by examples,
  correctness tests, and the small Table 3 benchmarks.
* **Trace-driven** (:meth:`ECSSDevice.deploy_spec` /
  :meth:`ECSSDevice.run_trace`) — for the 10M-100M-label benchmarks the
  device consumes statistically-generated candidate traces tile by tile and
  scales sampled-tile timing to the full label space.

Both paths share the same placement, layout, and pipeline machinery, so a
feature flag changes *timing*, never *predictions*.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence

import numpy as np

from ..cfp32.circuits import MacDesign
from ..config import ECSSDConfig
from ..errors import ConfigurationError, WorkloadError
from ..faults.injector import FAULT_TRACK, get_injector
from ..obs import get_registry, get_tracer
from ..layout.heterogeneous import WeightLayout, heterogeneous_layout, homogeneous_layout
from ..layout.learned import HotnessPredictor, LearnedInterleaving, empirical_frequencies
from ..layout.placement import InterleavingStrategy, WeightPlacement, build_placement
from ..layout.sequential import SequentialStoring
from ..layout.uniform import UniformInterleaving
from ..screening.model import ApproximateScreeningModel
from ..workloads.benchmarks import BenchmarkSpec
from ..workloads.traces import CandidateTraceGenerator
from .accelerator import AcceleratorModel
from .pipeline import PipelineFeatures, RunResult, TilePipelineModel, TileWorkload

logger = logging.getLogger(__name__)

# L2P table + management data resident in DRAM (reserved from the 4-bit share).
_DRAM_RESERVED = 256 * 1024 * 1024


class _PinnedChannel(InterleavingStrategy):
    """All vectors on one channel (sequential storing seen from one tile)."""

    name = "sequential"

    def __init__(self, channel: int) -> None:
        self.channel = channel

    def assign_channels(
        self, num_vectors: int, num_channels: int, tile_vectors: int
    ) -> np.ndarray:
        return np.full(num_vectors, self.channel, dtype=np.int64)


@dataclass
class DeploymentInfo:
    """What a deployment placed where."""

    num_labels: int
    hidden_dim: int
    shrunk_dim: int
    tile_vectors: int
    layout: WeightLayout
    placement: Optional[WeightPlacement]
    strategy_name: str

    @property
    def num_tiles(self) -> int:
        return -(-self.num_labels // self.tile_vectors)


@dataclass
class PerformanceReport:
    """Timing outcome of one inference run."""

    run: RunResult
    queries: int
    scaled_total_time: float
    sampled_tiles: int
    total_tiles: int
    label: str = ""

    @property
    def time_per_query(self) -> float:
        if self.queries <= 0:
            return float("nan")
        return self.scaled_total_time / self.queries

    @property
    def fp32_channel_utilization(self) -> float:
        return self.run.fp32_channel_utilization

    def speedup_over(self, other: "PerformanceReport") -> float:
        if self.scaled_total_time <= 0:
            raise WorkloadError("cannot compute speedup of a zero-time run")
        return other.scaled_total_time / self.scaled_total_time


def make_strategy(
    name: str, predictor: Optional[HotnessPredictor] = None
) -> InterleavingStrategy:
    """Factory for the §5 strategies by name."""
    if name == "sequential":
        return SequentialStoring()
    if name == "uniform":
        return UniformInterleaving()
    if name == "learned":
        if predictor is None:
            raise ConfigurationError("learned interleaving needs a HotnessPredictor")
        return LearnedInterleaving(predictor)
    raise ConfigurationError(f"unknown interleaving strategy {name!r}")


class ECSSDevice:
    """One ECSSD with a chosen feature set and interleaving strategy."""

    def __init__(
        self,
        config: Optional[ECSSDConfig] = None,
        features: PipelineFeatures = PipelineFeatures.full(),
        interleaving: str = "learned",
    ) -> None:
        self.config = config or ECSSDConfig()
        self.features = features
        self.interleaving = interleaving
        self.accelerator = AcceleratorModel(
            config=self.config.accelerator, fp32_design=features.mac_design
        )
        self.pipeline = TilePipelineModel(
            config=self.config, accelerator=self.accelerator, features=features
        )
        self.model: Optional[ApproximateScreeningModel] = None
        self.deployment: Optional[DeploymentInfo] = None
        self._spec: Optional[BenchmarkSpec] = None

    # --- deployment ------------------------------------------------------------------
    def deploy_model(
        self,
        weights: np.ndarray,
        train_features: Optional[np.ndarray] = None,
        target_ratio: float = 0.10,
        seed: int = 0,
    ) -> DeploymentInfo:
        """Deploy a materialized weight matrix (functional mode).

        Builds the screening model, calibrates the threshold on
        ``train_features`` (when given), constructs the hotness predictor
        from the INT4 codes, fine-tunes it on the training candidates, and
        places the FP32 matrix across channels with the device's strategy.
        """
        weights = np.asarray(weights, dtype=np.float32)
        self.model = ApproximateScreeningModel(weights, seed=seed)
        predictor = HotnessPredictor.from_quantized(self.model.quantized)
        if train_features is not None:
            self.model.calibrate(train_features, target_ratio=target_ratio)
            train_stats = self.model.infer(train_features)
            frequencies = empirical_frequencies(
                train_stats.screen.candidates, self.model.num_labels
            )
            predictor.fine_tune(frequencies, observations=len(train_features))
        strategy = make_strategy(self.interleaving, predictor)
        tile_vectors = self.accelerator.tile_vectors_for(self.model.shrunk_dim)
        placement = build_placement(
            strategy,
            num_vectors=self.model.num_labels,
            num_channels=self.config.flash.channels,
            vector_bytes=4 * self.model.hidden_dim,
            page_size=self.config.flash.page_size,
            tile_vectors=tile_vectors,
        )
        layout = self._build_layout(
            int4_bytes=self.model.quantized.nbytes_packed,
            fp32_bytes=4 * self.model.num_labels * self.model.hidden_dim,
        )
        self.deployment = DeploymentInfo(
            num_labels=self.model.num_labels,
            hidden_dim=self.model.hidden_dim,
            shrunk_dim=self.model.shrunk_dim,
            tile_vectors=tile_vectors,
            layout=layout,
            placement=placement,
            strategy_name=strategy.name,
        )
        return self.deployment

    def deploy_spec(self, spec: BenchmarkSpec) -> DeploymentInfo:
        """Deploy a Table 3 benchmark by geometry only (trace mode)."""
        self._spec = spec
        tile_vectors = self.accelerator.tile_vectors_for(spec.shrunk_dim)
        layout = self._build_layout(
            int4_bytes=spec.int4_matrix_bytes, fp32_bytes=spec.fp32_matrix_bytes
        )
        self.deployment = DeploymentInfo(
            num_labels=spec.num_labels,
            hidden_dim=spec.hidden_dim,
            shrunk_dim=spec.shrunk_dim,
            tile_vectors=tile_vectors,
            layout=layout,
            placement=None,
            strategy_name=self.interleaving,
        )
        return self.deployment

    def _build_layout(self, int4_bytes: int, fp32_bytes: int) -> WeightLayout:
        if fp32_bytes > self.config.capacity_bytes:
            raise ConfigurationError(
                f"FP32 matrix ({fp32_bytes} B) exceeds flash capacity"
            )
        if self.features.heterogeneous:
            layout = heterogeneous_layout(int4_bytes, fp32_bytes)
            layout.check_dram_capacity(
                self.config.dram_capacity, reserved=_DRAM_RESERVED
            )
        else:
            layout = homogeneous_layout(int4_bytes, fp32_bytes)
        return layout

    # --- functional inference ---------------------------------------------------------
    def run_inference(
        self, features: np.ndarray, top_k: int = 5
    ) -> tuple:
        """(predictions, PerformanceReport) for a real feature batch."""
        if self.model is None or self.deployment is None:
            raise ConfigurationError("deploy_model() must run before inference")
        placement = self.deployment.placement
        assert placement is not None
        features = np.atleast_2d(np.asarray(features, dtype=np.float32))
        tracer = get_tracer()
        with tracer.span(
            "run_inference", queries=features.shape[0], label=self.features.label
        ) as span:
            stats = self.model.infer(features, top_k=top_k)
            injector = get_injector()
            fault_surcharge = 0.0
            if injector.enabled:
                stats = self._apply_weight_faults(
                    injector, stats, features, top_k, tracer
                )
            batch = features.shape[0]
            tiles = self._tiles_from_candidates(
                stats.screen.candidates, placement, batch
            )
            host_in = batch * (
                4 * self.deployment.hidden_dim
                + (self.deployment.shrunk_dim + 1) // 2
            )
            host_out = batch * top_k * 8
            run = self.pipeline.simulate(
                tiles, host_bytes_in=host_in, host_bytes_out=host_out
            )
            if injector.enabled:
                # Every fetched page pays the expected ECC-ladder latency.
                total_pages = sum(
                    int(np.sum(t.fp32_pages_per_channel))
                    + int(np.sum(t.int4_pages_per_channel))
                    for t in tiles
                )
                fault_surcharge = injector.page_read_surcharge() * total_pages
            span.set_sim_window(0.0, run.total_time + fault_surcharge)
            span.set_attr("tiles", run.tiles)
        registry = get_registry()
        if registry.enabled:
            registry.counter(
                "ecssd_inference_runs_total", "inference passes executed"
            ).inc(mode="functional")
            registry.counter(
                "ecssd_inference_queries_total", "queries served"
            ).inc(batch, mode="functional")
        logger.info(
            "run_inference: %d queries, %d tiles, %.6fs simulated",
            batch, run.tiles, run.total_time,
        )
        report = PerformanceReport(
            run=run,
            queries=batch,
            scaled_total_time=run.total_time + fault_surcharge,
            sampled_tiles=run.tiles,
            total_tiles=self.deployment.num_tiles,
            label=self.features.label,
        )
        return stats, report

    def _apply_weight_faults(self, injector, stats, features, top_k, tracer):
        """Drop candidates whose weights are unreadable or corrupted.

        Uncorrectable FP32 weight pages and DRAM-flipped screener rows both
        make a label unusable: it is removed from every query's candidate
        set and the surviving candidates are re-ranked, so the accuracy
        cost of device faults is visible in the predictions (the classifier
        pads short queries with label -1 / score -inf).
        """
        assert self.model is not None
        bad = np.union1d(
            injector.unreadable_labels(self.model.num_labels),
            injector.flipped_labels(self.model.num_labels),
        )
        if bad.size == 0:
            return stats
        surviving = [
            np.setdiff1d(np.asarray(c, dtype=np.int64), bad)
            for c in stats.screen.candidates
        ]
        result = self.model.classifier.classify(features, surviving, top_k=top_k)
        screen = replace(stats.screen, candidates=surviving)
        stats = replace(
            stats,
            result=result,
            screen=screen,
            candidate_ratio=screen.candidate_ratio(),
        )
        if tracer.enabled:
            tracer.instant(
                "weight_faults",
                track=FAULT_TRACK,
                attrs={"labels_dropped": int(bad.size)},
            )
        registry = get_registry()
        if registry.enabled:
            registry.counter(
                "fault_labels_dropped_total",
                "labels dropped from candidate sets by device faults",
            ).inc(int(bad.size))
        return stats

    def _tiles_from_candidates(
        self,
        candidates_per_query: Sequence[np.ndarray],
        placement: WeightPlacement,
        batch: int,
    ) -> List[TileWorkload]:
        """Split global candidate sets into per-tile workloads.

        The batch's candidate union drives data movement (a vector fetched
        once serves every query in the batch); compute scales with the
        per-query candidate total.
        """
        assert self.deployment is not None
        tile_vectors = self.deployment.tile_vectors
        num_labels = self.deployment.num_labels
        union = np.unique(np.concatenate([np.asarray(c) for c in candidates_per_query]))
        per_query_total = sum(len(c) for c in candidates_per_query)
        tiles: List[TileWorkload] = []
        int4_tile_bytes = tile_vectors * ((self.deployment.shrunk_dim + 1) // 2)
        for start in range(0, num_labels, tile_vectors):
            stop = min(start + tile_vectors, num_labels)
            members = union[(union >= start) & (union < stop)]
            pages = placement.pages_per_channel(members)
            # Per-tile compute share proportional to this tile's candidates.
            share = len(members) / max(1, len(union))
            tiles.append(
                TileWorkload(
                    tile_vectors=stop - start,
                    shrunk_dim=self.deployment.shrunk_dim,
                    hidden_dim=self.deployment.hidden_dim,
                    batch=batch,
                    candidates=int(round(per_query_total * share / batch)),
                    fp32_pages_per_channel=pages,
                    int4_pages_per_channel=self._int4_pages(
                        int4_tile_bytes, start // tile_vectors
                    ),
                    int4_bytes=int4_tile_bytes,
                )
            )
        return tiles

    def _int4_pages(self, int4_tile_bytes: int, tile_index: int) -> np.ndarray:
        """Per-channel INT4 page load for homogeneous layouts.

        Sequential storing puts the tile's INT4 slice on one channel;
        interleaved layouts spread it evenly.
        """
        channels = self.config.flash.channels
        pages = -(-int4_tile_bytes // self.config.flash.page_size)
        out = np.zeros(channels, dtype=np.int64)
        if self.features.heterogeneous:
            return out
        if self.interleaving == "sequential":
            out[tile_index % channels] = pages
        else:
            out[:] = pages // channels
            out[: pages % channels] += 1
        return out

    # --- trace-driven inference -----------------------------------------------------------
    def run_trace(
        self,
        generator: CandidateTraceGenerator,
        queries: int,
        sample_tiles: int = 16,
        train_queries: int = 200,
        predictor_fidelity: float = 0.9,
        seed: int = 0,
    ) -> PerformanceReport:
        """Timing at Table 3 scale from statistically generated candidates.

        ``sample_tiles`` tiles are simulated (placement built per tile from
        the trace generator's predictor signal, fine-tuned on a training
        trace) and the run time scales to the benchmark's full tile count.
        """
        if self._spec is None or self.deployment is None:
            raise ConfigurationError("deploy_spec() must run before run_trace")
        deployment = self.deployment
        tile_vectors = deployment.tile_vectors
        total_tiles = deployment.num_tiles
        sample_tiles = min(sample_tiles, total_tiles)
        batch = self._spec.batch_size
        int4_tile_bytes = tile_vectors * ((deployment.shrunk_dim + 1) // 2)
        tiles: List[TileWorkload] = []
        for t in range(sample_tiles):
            trace = generator.tile_trace(t, tile_vectors, num_queries=batch, seed=seed)
            placement = self._tile_placement(
                generator, t, tile_vectors, train_queries, predictor_fidelity
            )
            union = np.unique(np.concatenate(trace.candidates))
            pages = placement.pages_per_channel(union)
            per_query = int(np.mean([len(c) for c in trace.candidates]))
            tiles.append(
                TileWorkload(
                    tile_vectors=tile_vectors,
                    shrunk_dim=deployment.shrunk_dim,
                    hidden_dim=deployment.hidden_dim,
                    batch=batch,
                    candidates=per_query,
                    fp32_pages_per_channel=pages,
                    int4_pages_per_channel=self._int4_pages(int4_tile_bytes, t),
                    int4_bytes=int4_tile_bytes,
                )
            )
        host_in = queries * (
            4 * deployment.hidden_dim + (deployment.shrunk_dim + 1) // 2
        )
        tracer = get_tracer()
        with tracer.span(
            "run_trace",
            queries=queries,
            sample_tiles=sample_tiles,
            label=self.features.label,
        ) as span:
            run = self.pipeline.simulate(tiles, host_bytes_in=0, host_bytes_out=0)
            span.set_sim_window(0.0, run.total_time)
        registry = get_registry()
        if registry.enabled:
            registry.counter(
                "ecssd_inference_runs_total", "inference passes executed"
            ).inc(mode="trace")
            registry.counter(
                "ecssd_inference_queries_total", "queries served"
            ).inc(queries, mode="trace")
        # Scale steady-state tile time to the full label space and query
        # count; one-time overheads (sense fill, host upload) are paid once.
        batches = -(-queries // batch)
        scale = (total_tiles / sample_tiles) * batches
        scaled = (
            run.tile_time_total * scale
            + run.overhead_time
            + host_in / self.config.host_bandwidth
        )
        logger.info(
            "run_trace: %d queries over %d/%d tiles, %.6fs scaled",
            queries, sample_tiles, total_tiles, scaled,
        )
        return PerformanceReport(
            run=run,
            queries=queries,
            scaled_total_time=scaled,
            sampled_tiles=sample_tiles,
            total_tiles=total_tiles,
            label=self.features.label,
        )

    def _tile_placement(
        self,
        generator: CandidateTraceGenerator,
        tile_index: int,
        tile_vectors: int,
        train_queries: int,
        fidelity: float,
    ) -> WeightPlacement:
        assert self.deployment is not None
        if self.interleaving == "sequential":
            # A tile is far smaller than one channel's contiguous slab, so
            # sequential storing pins the whole tile to the slab's channel.
            channels = self.config.flash.channels
            slab = -(-self.deployment.num_labels // channels)
            channel = min(tile_index * tile_vectors // slab, channels - 1)
            return build_placement(
                _PinnedChannel(channel),
                num_vectors=tile_vectors,
                num_channels=channels,
                vector_bytes=4 * self.deployment.hidden_dim,
                page_size=self.config.flash.page_size,
                tile_vectors=tile_vectors,
            )
        predictor = None
        if self.interleaving == "learned":
            abs_sums = generator.predictor_abs_sums(
                tile_index, tile_vectors, fidelity=fidelity
            )
            predictor = HotnessPredictor(abs_sums)
            if train_queries > 0:
                train = generator.tile_trace(
                    tile_index, tile_vectors, num_queries=train_queries, seed=1
                )
                predictor.fine_tune(
                    train.selection_frequency(), observations=train_queries
                )
        strategy = make_strategy(self.interleaving, predictor)
        return build_placement(
            strategy,
            num_vectors=tile_vectors,
            num_channels=self.config.flash.channels,
            vector_bytes=4 * self.deployment.hidden_dim,
            page_size=self.config.flash.page_size,
            tile_vectors=tile_vectors,
        )
