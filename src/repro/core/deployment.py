"""Weight deployment timing: the §4.5 data-preparation period.

Before inference starts, the host must (a) pre-align the FP32 matrix into
CFP32 (an offline pass the paper performs once), (b) push the 4-bit matrix
over PCIe into the device DRAM, and (c) push the CFP32 matrix over PCIe and
program it into flash at the channel addresses the interleaving framework
chose.  For S100M that is a 400 GB ingest, so deployment time matters when
models are updated.

Programming throughput is die-limited: each die programs one 4 KiB page per
``tPROG`` (660 us), so a channel's program bandwidth is
``dies_per_channel * page_size / tPROG`` (~49 MB/s with Table 2 timing) and
the device-wide limit is 8x that — far below the PCIe link, which is why
deployment is program-bound and why the paper performs it offline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..config import ECSSDConfig
from ..errors import ConfigurationError
from ..units import gflops
from ..workloads.benchmarks import BenchmarkSpec

# Host-side pre-alignment throughput.  §4.2 measures 0.005 ms for a 1x1024
# vector on an RTX 3090 -> ~0.82 GB/s of FP32 data; CPU hosts are slower but
# the pass is embarrassingly parallel, so we model the GPU figure.
PREALIGN_BYTES_PER_SECOND = 1024 * 4 / 5e-6


@dataclass
class DeploymentTiming:
    """Breakdown of one full weight deployment."""

    prealign_time: float
    int4_transfer_time: float
    fp32_transfer_time: float
    program_time: float
    l2p_setup_time: float

    @property
    def total_time(self) -> float:
        """End-to-end deployment latency.

        Host transfer and flash programming pipeline against each other
        (the buffer decouples them), so the flash phase costs
        ``max(transfer, program)``; pre-alignment is an offline pass that
        precedes the ingest.
        """
        return (
            self.prealign_time
            + self.int4_transfer_time
            + max(self.fp32_transfer_time, self.program_time)
            + self.l2p_setup_time
        )

    @property
    def bottleneck(self) -> str:
        phases = {
            "prealign": self.prealign_time,
            "int4_transfer": self.int4_transfer_time,
            "fp32_transfer": self.fp32_transfer_time,
            "program": self.program_time,
            "l2p_setup": self.l2p_setup_time,
        }
        return max(phases, key=phases.get)


class DeploymentModel:
    """Times the data-preparation period for a benchmark on a device."""

    def __init__(self, config: Optional[ECSSDConfig] = None) -> None:
        self.config = config or ECSSDConfig()

    @property
    def program_bandwidth(self) -> float:
        """Device-wide flash programming bandwidth (bytes/s), die-limited."""
        flash = self.config.flash
        per_die = flash.page_size / flash.program_latency
        return per_die * flash.dies_per_channel * flash.channels

    def deploy(self, spec: BenchmarkSpec) -> DeploymentTiming:
        """Time a full deployment of ``spec``'s weight matrices."""
        fp32_bytes = spec.fp32_matrix_bytes
        int4_bytes = spec.int4_matrix_bytes
        if fp32_bytes > self.config.capacity_bytes:
            raise ConfigurationError("FP32 matrix exceeds flash capacity")
        host_bw = self.config.host_bandwidth
        prealign = fp32_bytes / PREALIGN_BYTES_PER_SECOND
        int4_transfer = int4_bytes / min(host_bw, self.config.dram_bandwidth)
        fp32_transfer = fp32_bytes / host_bw
        program = fp32_bytes / self.program_bandwidth
        # L2P entries: one 8-byte mapping per page, written to DRAM.
        pages = -(-fp32_bytes // self.config.flash.page_size)
        l2p = 8 * pages / self.config.dram_bandwidth
        return DeploymentTiming(
            prealign_time=prealign,
            int4_transfer_time=int4_transfer,
            fp32_transfer_time=fp32_transfer,
            program_time=program,
            l2p_setup_time=l2p,
        )

    def amortization_queries(
        self, spec: BenchmarkSpec, time_per_query: float, overhead: float = 0.01
    ) -> float:
        """Queries after which deployment is <= ``overhead`` of total time.

        Solves ``deploy <= overhead * N * time_per_query`` for N — the
        break-even that tells an operator how long a model must serve
        before its 400 GB ingest stops mattering.
        """
        if time_per_query <= 0:
            raise ConfigurationError("time_per_query must be positive")
        if not (0 < overhead < 1):
            raise ConfigurationError("overhead must be in (0, 1)")
        return self.deploy(spec).total_time / (overhead * time_per_query)
