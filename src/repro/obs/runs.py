"""Run provenance: manifests, a file-based registry, and run comparison.

Every simulated experiment in this repo is supposed to be a pure function
of its configuration and seed — but until a run is *named* by those inputs,
"same run" is a claim, not a check.  This module closes that gap:

* :class:`RunManifest` snapshots what a run *was*: a stable run ID derived
  from (canonical config digest, seed, workload spec, package version), the
  full parameter snapshot, an artifact index (paths plus content digests),
  summary metrics, and the deterministic digest track recorded by
  :class:`~repro.obs.digest.DigestRecorder`;
* :class:`RunRegistry` is the dumbest durable store that works: one JSON
  file per run under a ``runs/`` directory, listable and queryable, with no
  daemon and no lockfile — re-registering an identical run is a no-op
  overwrite because the run ID *is* the content identity;
* :func:`compare_runs` diffs two manifests' summary metrics through the
  perf-diff tolerance machinery; :func:`diverge_runs` replays their digest
  tracks through :func:`~repro.obs.digest.diverge_digest_entries` to find
  the first state mismatch.

Two runs with the same run ID should never diverge; a divergence between
them is a determinism bug by definition, which is exactly what CI's
determinism smoke job asserts.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import ObservabilityError
from .digest import (
    DigestEntry,
    DivergenceReport,
    canonical_json,
    diverge_digest_entries,
    state_digest,
)
from .perfdiff import (
    DEFAULT_REL_TOL,
    DEFAULT_TOLERANCES,
    PerfDiffReport,
    Tolerance,
    diff_metrics,
    flatten_metrics,
)

#: Manifest schema version — bump on incompatible field changes.
MANIFEST_SCHEMA = 1


def package_version() -> str:
    """The installed :mod:`repro` version, resolved lazily.

    Lazy because ``repro/__init__`` assigns ``__version__`` *after* importing
    the subpackages (including this one); a module-level import here would
    read it before it exists.
    """
    import repro

    return str(getattr(repro, "__version__", "0"))


def config_digest(config: Mapping[str, object]) -> str:
    """Digest of a parameter snapshot's canonical JSON form."""
    return state_digest(dict(config))


def file_digest(path: str) -> str:
    """Full sha256 of a file's bytes (artifact content identity)."""
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 16), b""):
            digest.update(chunk)
    return digest.hexdigest()


def derive_run_id(
    config: Mapping[str, object],
    seed: int,
    workload: Mapping[str, object],
    version: Optional[str] = None,
) -> str:
    """Stable run identity: hash of (config digest, seed, workload, version).

    Two runs agree on their run ID exactly when they were launched from the
    same inputs — which is the precondition for expecting their digest
    tracks to match.
    """
    payload = {
        "config_digest": config_digest(config),
        "seed": int(seed),
        "workload": dict(workload),
        "version": version if version is not None else package_version(),
    }
    return state_digest(payload)


@dataclass
class RunManifest:
    """Everything needed to identify, re-launch, and compare one run."""

    run_id: str
    label: str
    seed: int
    config: Dict[str, object]
    workload: Dict[str, object]
    version: str
    metrics: Dict[str, object] = field(default_factory=dict)
    artifacts: Dict[str, Dict[str, str]] = field(default_factory=dict)
    digests: List[DigestEntry] = field(default_factory=list)

    @classmethod
    def build(
        cls,
        label: str,
        seed: int,
        config: Mapping[str, object],
        workload: Mapping[str, object],
        metrics: Optional[Mapping[str, object]] = None,
        digests: Optional[Sequence[DigestEntry]] = None,
    ) -> "RunManifest":
        """Construct a manifest, deriving the run ID from its inputs."""
        version = package_version()
        return cls(
            run_id=derive_run_id(config, seed, workload, version),
            label=label,
            seed=int(seed),
            config=dict(config),
            workload=dict(workload),
            version=version,
            metrics=dict(metrics or {}),
            digests=list(digests or []),
        )

    @property
    def config_digest(self) -> str:
        return config_digest(self.config)

    def add_artifact(self, name: str, path: str) -> Dict[str, str]:
        """Index an artifact by name, recording its path and content digest."""
        if not os.path.exists(path):
            raise ObservabilityError(
                f"artifact {name!r} points at a missing file: {path}"
            )
        entry = {"path": path, "sha256": file_digest(path)}
        self.artifacts[name] = entry
        return entry

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": MANIFEST_SCHEMA,
            "run_id": self.run_id,
            "label": self.label,
            "seed": self.seed,
            "config": dict(self.config),
            "config_digest": self.config_digest,
            "workload": dict(self.workload),
            "version": self.version,
            "metrics": dict(self.metrics),
            "artifacts": {k: dict(v) for k, v in sorted(self.artifacts.items())},
            "digests": [entry.to_dict() for entry in self.digests],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "RunManifest":
        digests_raw = data.get("digests", [])
        artifacts_raw = data.get("artifacts", {})
        return cls(
            run_id=str(data["run_id"]),
            label=str(data.get("label", "")),
            seed=int(data["seed"]),  # type: ignore[arg-type]
            config=dict(data.get("config", {})),  # type: ignore[arg-type]
            workload=dict(data.get("workload", {})),  # type: ignore[arg-type]
            version=str(data.get("version", "0")),
            metrics=dict(data.get("metrics", {})),  # type: ignore[arg-type]
            artifacts={
                str(name): {str(k): str(v) for k, v in entry.items()}
                for name, entry in dict(artifacts_raw).items()  # type: ignore[arg-type]
            },
            digests=[
                DigestEntry.from_dict(entry)
                for entry in list(digests_raw)  # type: ignore[arg-type]
            ],
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "RunManifest":
        try:
            with open(path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
        except FileNotFoundError as exc:
            raise ObservabilityError(f"no run manifest at {path}") from exc
        except json.JSONDecodeError as exc:
            raise ObservabilityError(
                f"run manifest {path} is not valid JSON: {exc}"
            ) from exc
        return cls.from_dict(data)

    def summary_line(self) -> str:
        """One human-scannable line for ``repro runs list``."""
        return (
            f"{self.run_id}  label={self.label or '-'}  seed={self.seed}  "
            f"digests={len(self.digests)}  artifacts={len(self.artifacts)}  "
            f"v{self.version}"
        )


class RunRegistry:
    """File-per-run manifest store under one directory.

    ``register`` writes ``<root>/<run_id>.json``; lookups re-read from disk
    so concurrent writers (two CI runs into the same artifact dir) compose —
    last identical write wins, and identical runs write identical bytes.
    """

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)

    def path_for(self, run_id: str) -> str:
        return os.path.join(self.root, f"{run_id}.json")

    def register(self, manifest: RunManifest) -> str:
        """Persist a manifest; returns the file path written."""
        path = self.path_for(manifest.run_id)
        manifest.save(path)
        return path

    def run_ids(self) -> List[str]:
        """All registered run IDs, sorted (stable listing order)."""
        ids = [
            name[: -len(".json")]
            for name in os.listdir(self.root)
            if name.endswith(".json")
        ]
        return sorted(ids)

    def get(self, run_id: str) -> RunManifest:
        """Load one manifest; unambiguous prefixes of a run ID also resolve."""
        path = self.path_for(run_id)
        if not os.path.exists(path):
            matches = [rid for rid in self.run_ids() if rid.startswith(run_id)]
            if len(matches) == 1:
                path = self.path_for(matches[0])
            elif len(matches) > 1:
                raise ObservabilityError(
                    f"run id prefix {run_id!r} is ambiguous in {self.root}: "
                    + ", ".join(matches)
                )
            else:
                raise ObservabilityError(
                    f"no run {run_id!r} registered under {self.root} "
                    f"(known: {', '.join(self.run_ids()) or 'none'})"
                )
        return RunManifest.load(path)

    def manifests(self) -> List[RunManifest]:
        return [self.get(run_id) for run_id in self.run_ids()]

    def query(
        self,
        label: Optional[str] = None,
        seed: Optional[int] = None,
    ) -> List[RunManifest]:
        """Manifests filtered by exact label and/or seed, in run-ID order."""
        out = []
        for manifest in self.manifests():
            if label is not None and manifest.label != label:
                continue
            if seed is not None and manifest.seed != seed:
                continue
            out.append(manifest)
        return out


def compare_runs(
    a: RunManifest,
    b: RunManifest,
    tolerances: Sequence[Tolerance] = (),
    default_rel_tol: float = DEFAULT_REL_TOL,
) -> PerfDiffReport:
    """Diff two manifests' summary metrics under the perf-diff bands."""
    merged = tuple(tolerances) + DEFAULT_TOLERANCES
    return diff_metrics(
        flatten_metrics(dict(a.metrics)),
        flatten_metrics(dict(b.metrics)),
        tolerances=merged,
        default_rel_tol=default_rel_tol,
    )


def compare_many(
    baseline: RunManifest,
    candidates: Sequence[RunManifest],
    tolerances: Sequence[Tolerance] = (),
    default_rel_tol: float = DEFAULT_REL_TOL,
) -> List[Tuple[RunManifest, PerfDiffReport]]:
    """Diff each candidate against one shared baseline (N-way compare).

    Campaign cells all measure against the champion, so an N-way compare is
    N pairwise diffs anchored on the first run — returned in candidate
    order as ``(candidate, report)`` pairs.  Candidates with no summary
    metrics still produce a (trivially empty) report rather than raising;
    callers decide whether empty means "skip" or "fail".
    """
    return [
        (
            candidate,
            compare_runs(
                baseline,
                candidate,
                tolerances=tolerances,
                default_rel_tol=default_rel_tol,
            ),
        )
        for candidate in candidates
    ]


def diverge_runs(a: RunManifest, b: RunManifest) -> DivergenceReport:
    """First state divergence between two runs' recorded digest tracks."""
    return diverge_digest_entries(
        a.digests, b.digests, run_a=a.run_id, run_b=b.run_id
    )


def manifest_digest(manifest: RunManifest) -> str:
    """Digest over the whole manifest document (artifact-of-artifacts)."""
    return state_digest(json.loads(canonical_json(manifest.to_dict())))
