"""Per-request causal tracing with tail-latency attribution.

Aggregate histograms say *that* p99 moved; they cannot say *where a p99
request spent its time*.  This module threads a causal trace through the
full request lifecycle — admission, queue wait, deadline-batch formation,
shard fan-out, interconnect hops, data-node channel-slot service, ECC-tier
retries, steal/failover/park-unpark, and top-k merge — and decomposes each
completed request into a stage-bucketed critical path whose stage durations
sum *exactly* (telescoping boundary timestamps) to the end-to-end latency.

Three layers:

* :class:`CausalCollector` — the process-global observer the simulators
  call into behind the established zero-overhead-when-disabled guard
  (:func:`get_collector` returns :data:`NULL_COLLECTOR` unless one is
  installed, mirroring ``repro.faults.injector``).  The collector is
  observe-only: it consumes no simulator RNG and touches no timing
  arithmetic, so trace-enabled runs keep bit-identical run IDs.
* :class:`TailExemplarStore` — deterministic tail-exemplar capture: the K
  slowest requests end-to-end (min-heap, request-id tie-break) plus a
  seeded Algorithm-R reservoir sample of the rest, byte-identical per seed.
* :class:`AttributionReport` — answers "where does p99 live" per stage and
  per fault class, with p50/p95/p99/p99.9 per stage, an ECC-tier section,
  and Chrome-trace export of any exemplar's causal graph
  (:func:`trace_to_chrome`).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ObservabilityError, SimulationError
from .tracing import SpanRecord

# ---------------------------------------------------------------------------
# Stage taxonomy (fixed order; stages telescope to end-to-end latency)
# ---------------------------------------------------------------------------

STAGE_QUEUE_WAIT = "queue_wait"  # arrival -> batch dispatch
STAGE_FAILOVER = "failover"  # dispatch -> final successful route (parks etc.)
STAGE_FANOUT = "fanout_transfer"  # route -> shard task ready at data node
STAGE_SLOT_WAIT = "slot_wait"  # ready -> channel slot starts serving
STAGE_SERVICE = "service"  # base channel-slot execution time
STAGE_FAULT_SLOWDOWN = "fault_slowdown"  # slow-node / crawler multiplier cost
STAGE_RESULT = "result_transfer"  # shard finish -> result back at service node
STAGE_MERGE = "merge"  # last shard result -> top-k merge done
STAGE_CACHE = "cache"  # hot-label cache hit service (whole lifecycle)

STAGES: Tuple[str, ...] = (
    STAGE_QUEUE_WAIT,
    STAGE_FAILOVER,
    STAGE_FANOUT,
    STAGE_SLOT_WAIT,
    STAGE_SERVICE,
    STAGE_FAULT_SLOWDOWN,
    STAGE_RESULT,
    STAGE_MERGE,
    STAGE_CACHE,
)

# Fault classes a completed request is attributed to, by *critical-path*
# evidence (what actually delayed the request), highest precedence first.
FAULT_PARKED = "parked"
FAULT_REDISPATCHED = "redispatched"
FAULT_STOLEN = "stolen"
FAULT_SLOWED = "slowed"
FAULT_CLEAN = "clean"

FAULT_CLASSES: Tuple[str, ...] = (
    FAULT_PARKED,
    FAULT_REDISPATCHED,
    FAULT_STOLEN,
    FAULT_SLOWED,
    FAULT_CLEAN,
)

_QUANTILES: Tuple[Tuple[str, float], ...] = (
    ("p50_s", 50.0),
    ("p95_s", 95.0),
    ("p99_s", 99.0),
    ("p999_s", 99.9),
)

_EXEMPLAR_SALT = 0xCA5A
# Stage sums are telescoping differences of the same boundary floats, so any
# drift beyond accumulated rounding noise is a bookkeeping bug, not jitter.
_CONSERVATION_RTOL = 1e-9

_STAGE_TRACKS: Dict[str, str] = {
    STAGE_QUEUE_WAIT: "service-node",
    STAGE_FAILOVER: "service-node",
    STAGE_FANOUT: "interconnect",
    STAGE_SLOT_WAIT: "data-node",
    STAGE_SERVICE: "data-node",
    STAGE_FAULT_SLOWDOWN: "data-node",
    STAGE_RESULT: "interconnect",
    STAGE_MERGE: "service-node",
    STAGE_CACHE: "service-node",
}


# ---------------------------------------------------------------------------
# Per-request trace records
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RequestTrace:
    """One completed request's causally-linked critical path.

    ``stages`` holds ``(stage, seconds)`` pairs in :data:`STAGES` order
    (zero-duration stages included) and ``boundaries`` the named absolute
    sim timestamps between them — ``len(boundaries) == len(stages) + 1``,
    consecutive boundary differences ARE the stage durations, so the stage
    sum telescopes to ``completion - arrival`` exactly.
    """

    trace_id: str
    request_id: int
    kind: str  # "batch" | "cache" | "serve"
    arrival: float
    completion: float
    fault_class: str
    stages: Tuple[Tuple[str, float], ...]
    boundaries: Tuple[Tuple[str, float], ...]
    batch_id: int = -1
    service_node: int = -1
    shard: int = -1
    task_id: int = -1
    data_node: int = -1
    level: int = 0

    @property
    def latency(self) -> float:
        return self.completion - self.arrival

    def stage_map(self) -> Dict[str, float]:
        return dict(self.stages)

    def to_dict(self) -> Dict[str, object]:
        return {
            "trace_id": self.trace_id,
            "request_id": self.request_id,
            "kind": self.kind,
            "arrival_s": self.arrival,
            "completion_s": self.completion,
            "latency_s": self.latency,
            "fault_class": self.fault_class,
            "stages_s": {name: value for name, value in self.stages},
            "boundaries_s": {name: value for name, value in self.boundaries},
            "batch_id": self.batch_id,
            "service_node": self.service_node,
            "shard": self.shard,
            "task_id": self.task_id,
            "data_node": self.data_node,
            "level": self.level,
        }


def trace_spans(trace: RequestTrace) -> List[SpanRecord]:
    """The exemplar's causal graph as sim-clocked spans.

    Each stage becomes one span on its architectural track (service node,
    interconnect, data node); the ``after`` attr names the causally
    preceding stage, so the chain is explicit in the exported trace.
    """
    spans: List[SpanRecord] = []
    previous: Optional[str] = None
    for index, (stage, _) in enumerate(trace.stages):
        start = trace.boundaries[index][1]
        end = trace.boundaries[index + 1][1]
        track = _STAGE_TRACKS[stage]
        if track == "data-node" and trace.data_node >= 0:
            track = f"data-node{trace.data_node}"
        spans.append(
            SpanRecord(
                name=f"{trace.trace_id}/{stage}",
                track=track,
                sim_start=start,
                sim_end=end,
                attrs={
                    "trace_id": trace.trace_id,
                    "stage": stage,
                    "after": previous,
                    "fault_class": trace.fault_class,
                    "batch_id": trace.batch_id,
                    "shard": trace.shard,
                    "task_id": trace.task_id,
                    "level": trace.level,
                },
            )
        )
        previous = stage
    return spans


def trace_to_chrome(trace: RequestTrace) -> Dict[str, object]:
    """Chrome ``chrome://tracing`` document for one exemplar's causal graph."""
    from .export import spans_to_chrome_events

    return {
        "traceEvents": spans_to_chrome_events(trace_spans(trace)),
        "displayTimeUnit": "ns",
        "otherData": {
            "trace_id": trace.trace_id,
            "fault_class": trace.fault_class,
            "latency_s": trace.latency,
            "kind": trace.kind,
        },
    }


# ---------------------------------------------------------------------------
# Deterministic tail-exemplar capture
# ---------------------------------------------------------------------------


class TailExemplarStore:
    """K slowest requests + seeded Algorithm-R sample of the whole stream.

    The slowest set is exact (min-heap keyed ``(latency, -request_id)`` so
    latency ties deterministically keep the smaller request id).  The
    reservoir draws from an explicit ``default_rng((seed, salt))`` stream,
    so the kept sample is a pure function of (seed, offer order) —
    byte-identical run to run.
    """

    def __init__(self, slowest_k: int = 8, sample_size: int = 16, seed: int = 0):
        self.slowest_k = int(slowest_k)
        self.sample_size = int(sample_size)
        self.seed = int(seed)
        self._heap: List[Tuple[float, int, RequestTrace]] = []
        self._rng = np.random.default_rng((seed, _EXEMPLAR_SALT))
        self._reservoir: List[Tuple[int, RequestTrace]] = []
        self.offered = 0

    def offer(self, trace: RequestTrace) -> None:
        if self.slowest_k > 0:
            entry = (trace.latency, -trace.request_id, trace)
            if len(self._heap) < self.slowest_k:
                heapq.heappush(self._heap, entry)
            elif entry > self._heap[0]:
                heapq.heappushpop(self._heap, entry)
        if self.sample_size > 0:
            index = self.offered
            if len(self._reservoir) < self.sample_size:
                self._reservoir.append((index, trace))
            else:
                slot = int(self._rng.integers(0, index + 1))
                if slot < self.sample_size:
                    self._reservoir[slot] = (index, trace)
        self.offered += 1

    def slowest(self) -> List[RequestTrace]:
        """Slowest-first; latency ties break toward the smaller request id."""
        ordered = sorted(self._heap, key=lambda e: (-e[0], -e[1]))
        return [entry[2] for entry in ordered]

    def sampled(self) -> List[RequestTrace]:
        """Reservoir sample in arrival order, minus the slowest-K overlap."""
        slow_ids = {trace.request_id for trace in self.slowest()}
        return [
            trace
            for _, trace in sorted(self._reservoir, key=lambda e: e[0])
            if trace.request_id not in slow_ids
        ]


# ---------------------------------------------------------------------------
# Collector (null object + live implementation)
# ---------------------------------------------------------------------------


class NullCausalCollector:
    """Default no-op collector: every hook returns immediately.

    Simulators guard each hook call with ``collector.enabled`` so a
    disabled run pays one attribute read per loop, not per event — the
    same zero-overhead contract as the metrics registry, tracer, and
    fault injector.
    """

    enabled = False

    def on_dispatch(
        self,
        batch_id: int,
        service_node: int,
        dispatch_time: float,
        level: int,
        request_ids: Sequence[int],
        arrivals: Sequence[float],
    ) -> None:
        return None

    def on_task_route(
        self,
        task_id: int,
        batch_id: int,
        shard: int,
        exec_time: float,
        route_time: float,
        ready_at: float,
        node: int,
    ) -> None:
        return None

    def on_task_park(self, task_id: int, batch_id: int, shard: int) -> None:
        return None

    def on_task_steal(self, task_id: int) -> None:
        return None

    def on_task_redispatch(self, task_id: int) -> None:
        return None

    def on_task_start(
        self, task_id: int, started_at: float, end: float, exec_time: float
    ) -> None:
        return None

    def on_task_finish(self, task_id: int, end: float, result_at: float) -> None:
        return None

    def on_merge(self, batch_id: int, completion: float) -> None:
        return None

    def on_cache_hit(
        self, request_id: int, arrival: float, completion: float
    ) -> None:
        return None

    def on_shed(self, reason: str) -> None:
        return None

    def on_serve_complete(
        self,
        request_id: int,
        arrival: float,
        dispatch_time: float,
        completion: float,
        level: int = 0,
    ) -> None:
        return None

    def on_ecc(self, tier: str, extra_latency: float, retries: int) -> None:
        return None


@dataclass
class _TaskRecord:
    batch_id: int
    shard: int
    exec_time: float = 0.0
    route_time: float = 0.0
    ready_at: float = 0.0
    node: int = -1
    started_at: float = 0.0
    end: float = 0.0
    result_at: float = 0.0
    stolen: bool = False
    parked: bool = False
    redispatched: bool = False


@dataclass
class _BatchRecord:
    service_node: int
    dispatch_time: float
    level: int
    request_ids: Tuple[int, ...]
    arrivals: Tuple[float, ...]
    task_ids: List[int] = field(default_factory=list)


class CausalCollector(NullCausalCollector):
    """Live per-request causal collector.

    Observe-only: hooks copy already-computed sim timestamps into private
    records (no simulator RNG draws, no timing arithmetic), finalize each
    request at its merge/cache/serve completion into a stage breakdown,
    verify stage-sum conservation, and feed the tail-exemplar store.
    """

    enabled = True

    def __init__(
        self,
        slowest_k: int = 8,
        sample_size: int = 16,
        seed: int = 0,
        keep_traces: bool = False,
    ):
        self.exemplars = TailExemplarStore(
            slowest_k=slowest_k, sample_size=sample_size, seed=seed
        )
        # Opt-in full retention (tests, small audits); the default keeps
        # memory bounded by the exemplar store no matter how many requests
        # the run completes.
        self._traces: Optional[List[RequestTrace]] = [] if keep_traces else None
        self.seed = int(seed)
        self._tasks: Dict[int, _TaskRecord] = {}
        self._batches: Dict[int, _BatchRecord] = {}
        self._latencies: List[float] = []
        self._classes: List[str] = []
        self._stage_samples: Dict[str, List[float]] = {s: [] for s in STAGES}
        self.completed = 0
        self.cache_hits = 0
        self.shed_by_reason: Dict[str, int] = {}
        self.ecc_tiers: Dict[str, int] = {}
        self.ecc_retries = 0
        self.ecc_extra_latency = 0.0

    # -- cluster/serve hook implementations --------------------------------

    def on_dispatch(
        self,
        batch_id: int,
        service_node: int,
        dispatch_time: float,
        level: int,
        request_ids: Sequence[int],
        arrivals: Sequence[float],
    ) -> None:
        self._batches[batch_id] = _BatchRecord(
            service_node=service_node,
            dispatch_time=dispatch_time,
            level=level,
            request_ids=tuple(request_ids),
            arrivals=tuple(arrivals),
        )

    def _task(self, task_id: int, batch_id: int, shard: int) -> _TaskRecord:
        record = self._tasks.get(task_id)
        if record is None:
            record = _TaskRecord(batch_id=batch_id, shard=shard)
            self._tasks[task_id] = record
            batch = self._batches.get(batch_id)
            if batch is not None:
                batch.task_ids.append(task_id)
        return record

    def on_task_route(
        self,
        task_id: int,
        batch_id: int,
        shard: int,
        exec_time: float,
        route_time: float,
        ready_at: float,
        node: int,
    ) -> None:
        record = self._task(task_id, batch_id, shard)
        record.exec_time = exec_time
        record.route_time = route_time
        record.ready_at = ready_at
        record.node = node

    def on_task_park(self, task_id: int, batch_id: int, shard: int) -> None:
        self._task(task_id, batch_id, shard).parked = True

    def on_task_steal(self, task_id: int) -> None:
        record = self._tasks.get(task_id)
        if record is not None:
            record.stolen = True

    def on_task_redispatch(self, task_id: int) -> None:
        record = self._tasks.get(task_id)
        if record is not None:
            record.redispatched = True

    def on_task_start(
        self, task_id: int, started_at: float, end: float, exec_time: float
    ) -> None:
        record = self._tasks.get(task_id)
        if record is not None:
            record.started_at = started_at
            record.end = end
            record.exec_time = exec_time

    def on_task_finish(self, task_id: int, end: float, result_at: float) -> None:
        record = self._tasks.get(task_id)
        if record is not None:
            record.end = end
            record.result_at = result_at

    def on_merge(self, batch_id: int, completion: float) -> None:
        batch = self._batches.pop(batch_id, None)
        if batch is None:
            return
        tasks = [self._tasks.pop(tid) for tid in batch.task_ids]
        if not tasks:
            return
        # The request's critical path runs through the shard whose result
        # arrived last (latency ties -> the smaller task id, so the choice
        # is deterministic and replayable).
        critical = max(
            range(len(tasks)),
            key=lambda i: (tasks[i].result_at, -batch.task_ids[i]),
        )
        task = tasks[critical]
        task_id = batch.task_ids[critical]
        if task.parked:
            fault_class = FAULT_PARKED
        elif task.redispatched:
            fault_class = FAULT_REDISPATCHED
        elif task.stolen:
            fault_class = FAULT_STOLEN
        elif (task.end - task.started_at) - task.exec_time > _CONSERVATION_RTOL:
            fault_class = FAULT_SLOWED
        else:
            fault_class = FAULT_CLEAN
        service_end = task.started_at + task.exec_time
        shared = (
            (STAGE_FAILOVER, batch.dispatch_time, task.route_time),
            (STAGE_FANOUT, task.route_time, task.ready_at),
            (STAGE_SLOT_WAIT, task.ready_at, task.started_at),
            (STAGE_SERVICE, task.started_at, service_end),
            (STAGE_FAULT_SLOWDOWN, service_end, task.end),
            (STAGE_RESULT, task.end, task.result_at),
            (STAGE_MERGE, task.result_at, completion),
        )
        for request_id, arrival in zip(batch.request_ids, batch.arrivals):
            stages = {name: 0.0 for name in STAGES}
            stages[STAGE_QUEUE_WAIT] = batch.dispatch_time - arrival
            for name, start, end in shared:
                stages[name] = end - start
            boundaries = (
                ("arrival", arrival),
                ("dispatch", batch.dispatch_time),
                ("route", task.route_time),
                ("ready", task.ready_at),
                ("start", task.started_at),
                ("service_end", service_end),
                ("exec_end", task.end),
                ("result", task.result_at),
                ("completion", completion),
            )
            self._finish(
                RequestTrace(
                    trace_id=f"req-{request_id}",
                    request_id=request_id,
                    kind="batch",
                    arrival=arrival,
                    completion=completion,
                    fault_class=fault_class,
                    stages=tuple(
                        (name, stages[name])
                        for name in STAGES
                        if name != STAGE_CACHE
                    ),
                    boundaries=boundaries,
                    batch_id=batch_id,
                    service_node=batch.service_node,
                    shard=task.shard,
                    task_id=task_id,
                    data_node=task.node,
                    level=batch.level,
                )
            )

    def on_cache_hit(
        self, request_id: int, arrival: float, completion: float
    ) -> None:
        self.cache_hits += 1
        self._finish(
            RequestTrace(
                trace_id=f"req-{request_id}",
                request_id=request_id,
                kind="cache",
                arrival=arrival,
                completion=completion,
                fault_class=FAULT_CLEAN,
                stages=((STAGE_CACHE, completion - arrival),),
                boundaries=(("arrival", arrival), ("completion", completion)),
            )
        )

    def on_shed(self, reason: str) -> None:
        self.shed_by_reason[reason] = self.shed_by_reason.get(reason, 0) + 1

    def on_serve_complete(
        self,
        request_id: int,
        arrival: float,
        dispatch_time: float,
        completion: float,
        level: int = 0,
    ) -> None:
        self._finish(
            RequestTrace(
                trace_id=f"req-{request_id}",
                request_id=request_id,
                kind="serve",
                arrival=arrival,
                completion=completion,
                fault_class=FAULT_CLEAN,
                stages=(
                    (STAGE_QUEUE_WAIT, dispatch_time - arrival),
                    (STAGE_SERVICE, completion - dispatch_time),
                ),
                boundaries=(
                    ("arrival", arrival),
                    ("dispatch", dispatch_time),
                    ("completion", completion),
                ),
                level=level,
            )
        )

    def on_ecc(self, tier: str, extra_latency: float, retries: int) -> None:
        self.ecc_tiers[tier] = self.ecc_tiers.get(tier, 0) + 1
        self.ecc_retries += retries
        self.ecc_extra_latency += extra_latency

    # -- finalization -------------------------------------------------------

    def _finish(self, trace: RequestTrace) -> None:
        latency = trace.latency
        total = math.fsum(value for _, value in trace.stages)
        if abs(total - latency) > _CONSERVATION_RTOL * max(1.0, abs(latency)):
            raise SimulationError(
                f"causal stage sum {total!r} != end-to-end latency "
                f"{latency!r} for {trace.trace_id} — attribution lost "
                f"{latency - total!r}s"
            )
        stage_map = trace.stage_map()
        for name in STAGES:
            self._stage_samples[name].append(stage_map.get(name, 0.0))
        self._latencies.append(latency)
        self._classes.append(trace.fault_class)
        self.completed += 1
        self.exemplars.offer(trace)
        if self._traces is not None:
            self._traces.append(trace)

    def traces(self) -> Tuple[RequestTrace, ...]:
        """Every finished trace, in completion order (``keep_traces`` only)."""
        if self._traces is None:
            raise ObservabilityError(
                "full traces were not retained; construct the collector "
                "with keep_traces=True to audit every request"
            )
        return tuple(self._traces)

    def report(self) -> "AttributionReport":
        return AttributionReport.from_collector(self)


NULL_COLLECTOR = NullCausalCollector()
_collector: NullCausalCollector = NULL_COLLECTOR


def get_collector() -> NullCausalCollector:
    """The process-global causal collector (the null object when disabled)."""
    return _collector


def set_collector(collector: Optional[NullCausalCollector]) -> None:
    """Install a collector; ``None`` restores the zero-overhead null object."""
    global _collector
    _collector = NULL_COLLECTOR if collector is None else collector


class installed:
    """Context manager installing a collector for the duration of a block."""

    def __init__(self, collector: Optional[NullCausalCollector]):
        self.collector = collector
        self._previous: Optional[NullCausalCollector] = None

    def __enter__(self) -> NullCausalCollector:
        self._previous = get_collector()
        set_collector(self.collector)
        return get_collector()

    def __exit__(self, *exc_info: object) -> None:
        set_collector(self._previous)


# ---------------------------------------------------------------------------
# Attribution report
# ---------------------------------------------------------------------------


def _quantile_block(values: np.ndarray) -> Dict[str, float]:
    block = {
        label: float(np.percentile(values, q)) for label, q in _QUANTILES
    }
    block["mean_s"] = float(values.mean())
    block["max_s"] = float(values.max())
    return block


@dataclass(frozen=True)
class AttributionReport:
    """Where does p99 live: stage- and fault-class-bucketed tail attribution.

    ``stages`` carries per-stage latency quantiles plus each stage's share
    of total completed-request time; ``tail`` repeats the split restricted
    to the slowest 1% (latency >= p99), which is the attribution question
    the report exists to answer; ``fault_classes`` buckets requests by the
    critical-path fault evidence (parked/redispatched/stolen/slowed/clean).
    """

    completed: int
    cache_hits: int
    seed: int
    shed: Dict[str, int]
    latency: Dict[str, float]
    stages: Dict[str, Dict[str, float]]
    tail: Dict[str, object]
    fault_classes: Dict[str, Dict[str, float]]
    ecc: Dict[str, object]
    slowest: Tuple[RequestTrace, ...]
    sampled: Tuple[RequestTrace, ...]

    @classmethod
    def from_collector(cls, collector: CausalCollector) -> "AttributionReport":
        ecc: Dict[str, object] = {
            "tiers": dict(sorted(collector.ecc_tiers.items())),
            "retries": collector.ecc_retries,
            "extra_latency_s": collector.ecc_extra_latency,
        }
        if not collector.completed:
            return cls(
                completed=0,
                cache_hits=collector.cache_hits,
                seed=collector.seed,
                shed=dict(sorted(collector.shed_by_reason.items())),
                latency={},
                stages={},
                tail={},
                fault_classes={},
                ecc=ecc,
                slowest=(),
                sampled=(),
            )
        latencies = np.asarray(collector._latencies, dtype=np.float64)
        samples = {
            name: np.asarray(values, dtype=np.float64)
            for name, values in collector._stage_samples.items()
        }
        classes = np.asarray(collector._classes)
        total_time = float(latencies.sum())
        stages: Dict[str, Dict[str, float]] = {}
        for name in STAGES:
            values = samples[name]
            block = _quantile_block(values)
            block["total_s"] = float(values.sum())
            block["share"] = (
                block["total_s"] / total_time if total_time > 0.0 else 0.0
            )
            stages[name] = block
        threshold = float(np.percentile(latencies, 99.0))
        mask = latencies >= threshold
        tail_total = float(latencies[mask].sum())
        tail_stages: Dict[str, Dict[str, float]] = {}
        for name in STAGES:
            stage_tail = float(samples[name][mask].sum())
            tail_stages[name] = {
                "total_s": stage_tail,
                "share": stage_tail / tail_total if tail_total > 0.0 else 0.0,
            }
        tail: Dict[str, object] = {
            "threshold_s": threshold,
            "count": int(mask.sum()),
            "stages": tail_stages,
        }
        fault_classes: Dict[str, Dict[str, float]] = {}
        for fault_class in FAULT_CLASSES:
            class_mask = classes == fault_class
            count = int(class_mask.sum())
            if not count:
                continue
            block = _quantile_block(latencies[class_mask])
            block["count"] = float(count)
            block["share"] = count / len(latencies)
            block["tail_count"] = float(int((class_mask & mask).sum()))
            fault_classes[fault_class] = block
        return cls(
            completed=collector.completed,
            cache_hits=collector.cache_hits,
            seed=collector.seed,
            shed=dict(sorted(collector.shed_by_reason.items())),
            latency=_quantile_block(latencies),
            stages=stages,
            tail=tail,
            fault_classes=fault_classes,
            ecc=ecc,
            slowest=tuple(collector.exemplars.slowest()),
            sampled=tuple(collector.exemplars.sampled()),
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "completed": self.completed,
            "cache_hits": self.cache_hits,
            "seed": self.seed,
            "shed": dict(self.shed),
            "latency": dict(self.latency),
            "stages": {k: dict(v) for k, v in self.stages.items()},
            "tail": self.tail,
            "fault_classes": {
                k: dict(v) for k, v in self.fault_classes.items()
            },
            "ecc": self.ecc,
            "exemplars": {
                "slowest": [t.to_dict() for t in self.slowest],
                "sampled": [t.to_dict() for t in self.sampled],
            },
        }

    def stage_metrics(self, prefix: str = "stage_") -> Dict[str, float]:
        """Flat ablate-campaign metrics: per-stage p99 ms + tail shares.

        Names match the ``*p99*`` higher-is-worse scoring pattern, so the
        importance ranking picks up stage regressions without new config.
        """
        metrics: Dict[str, float] = {}
        for name, block in self.stages.items():
            metrics[f"{prefix}{name}_p99_ms"] = block["p99_s"] * 1e3
        if self.latency:
            metrics["latency_p999_ms"] = self.latency["p999_s"] * 1e3
        tail_stages = self.tail.get("stages")
        if isinstance(tail_stages, dict):
            for name, block in tail_stages.items():
                metrics[f"tail_{name}_share"] = block["share"]
        return metrics

    def render(self) -> str:
        from ..analysis.reporting import render_table

        lines: List[str] = []
        shed_total = sum(self.shed.values())
        lines.append(
            f"tail attribution over {self.completed} completed requests "
            f"({self.cache_hits} cache hits, {shed_total} shed, "
            f"seed {self.seed})"
        )
        if not self.completed:
            lines.append("no completed requests — nothing to attribute")
            return "\n".join(lines)
        lat = self.latency
        lines.append(
            "end-to-end latency p50/p95/p99/p99.9: "
            f"{lat['p50_s'] * 1e3:.3f} / {lat['p95_s'] * 1e3:.3f} / "
            f"{lat['p99_s'] * 1e3:.3f} / {lat['p999_s'] * 1e3:.3f} ms"
        )
        tail_stages = self.tail["stages"]
        assert isinstance(tail_stages, dict)
        rows = []
        for name in STAGES:
            block = self.stages[name]
            if not (block["total_s"] > 0.0 or block["max_s"] > 0.0):
                continue
            rows.append(
                [
                    name,
                    f"{block['share'] * 100:.1f}%",
                    f"{tail_stages[name]['share'] * 100:.1f}%",
                    f"{block['p50_s'] * 1e3:.3f}",
                    f"{block['p95_s'] * 1e3:.3f}",
                    f"{block['p99_s'] * 1e3:.3f}",
                    f"{block['p999_s'] * 1e3:.3f}",
                ]
            )
        lines.append(
            render_table(
                ["stage", "share", "tail share", "p50 ms", "p95 ms",
                 "p99 ms", "p99.9 ms"],
                rows,
            )
        )
        class_rows = []
        for name in FAULT_CLASSES:
            block = self.fault_classes.get(name)
            if block is None:
                continue
            class_rows.append(
                [
                    name,
                    f"{int(block['count'])}",
                    f"{block['share'] * 100:.2f}%",
                    f"{int(block['tail_count'])}",
                    f"{block['p99_s'] * 1e3:.3f}",
                ]
            )
        lines.append(
            render_table(
                ["fault class", "requests", "share", "in tail", "p99 ms"],
                class_rows,
            )
        )
        tiers = self.ecc["tiers"]
        assert isinstance(tiers, dict)
        if tiers:
            tier_text = ", ".join(f"{k}={v}" for k, v in tiers.items())
            lines.append(
                f"ecc tiers: {tier_text} ({self.ecc['retries']} retries, "
                f"{self.ecc['extra_latency_s']}s extra latency)"
            )
        if self.slowest:
            exemplar_rows = [
                [
                    trace.trace_id,
                    f"{trace.latency * 1e3:.3f}",
                    trace.fault_class,
                    max(trace.stages, key=lambda s: s[1])[0],
                ]
                for trace in self.slowest
            ]
            lines.append(
                render_table(
                    ["exemplar", "latency ms", "fault class", "top stage"],
                    exemplar_rows,
                )
            )
        return "\n".join(lines)


__all__ = [
    "STAGES",
    "STAGE_QUEUE_WAIT",
    "STAGE_FAILOVER",
    "STAGE_FANOUT",
    "STAGE_SLOT_WAIT",
    "STAGE_SERVICE",
    "STAGE_FAULT_SLOWDOWN",
    "STAGE_RESULT",
    "STAGE_MERGE",
    "STAGE_CACHE",
    "FAULT_CLASSES",
    "RequestTrace",
    "TailExemplarStore",
    "NullCausalCollector",
    "CausalCollector",
    "AttributionReport",
    "NULL_COLLECTOR",
    "get_collector",
    "set_collector",
    "installed",
    "trace_spans",
    "trace_to_chrome",
]
