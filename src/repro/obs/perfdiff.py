"""Performance-regression differ for bench/metrics JSON artifacts.

``repro perf-diff baseline.json candidate.json`` compares two metric files
(``benchmarks/results/BENCH_*.json``, ``repro serve --out`` payloads, or any
JSON with numeric leaves), applies per-metric tolerance bands, and exits
nonzero on regression — so the bench trajectories checked into
``benchmarks/results/`` are *enforced*, not just recorded.

Mechanics:

* :func:`flatten_metrics` turns nested JSON into ``dotted.path`` -> float
  (lists are indexed: ``trajectory.2.p99_ms``); booleans count as 0/1 so
  flags like ``slo_attained`` regress loudly.
* A :class:`Tolerance` is an ``fnmatch`` glob over the dotted path, a
  relative band, and a direction: latency-like metrics only regress upward,
  goodput-like metrics only regress downward.  First matching tolerance
  wins; unmatched keys get ``default_rel_tol`` in both directions.
* A key present in the baseline but missing from the candidate is a
  regression (the metric disappeared); a new key is reported but harmless.

Pure functions over the two parsed documents: byte-identical inputs produce
a byte-identical :class:`PerfDiffReport`.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..errors import ConfigurationError

#: Tolerance directions.
HIGHER_IS_WORSE = "higher_is_worse"
LOWER_IS_WORSE = "lower_is_worse"
BOTH = "both"
_DIRECTIONS = (HIGHER_IS_WORSE, LOWER_IS_WORSE, BOTH)

#: Guard for relative deltas against a ~zero baseline.
_ABS_FLOOR = 1e-12


@dataclass(frozen=True)
class Tolerance:
    """One tolerance band: glob pattern, relative width, direction."""

    pattern: str
    rel_tol: float
    direction: str = BOTH

    def __post_init__(self) -> None:
        if self.rel_tol < 0:
            raise ConfigurationError("tolerance cannot be negative")
        if self.direction not in _DIRECTIONS:
            raise ConfigurationError(
                f"direction must be one of {_DIRECTIONS}, got {self.direction!r}"
            )

    def matches(self, key: str) -> bool:
        return fnmatchcase(key, self.pattern)


#: The documented default bands (DESIGN.md §11): tail latency may drift 10%,
#: throughput-like metrics 5% down, attainment/retention 2% down.  Metadata
#: echoes (seeds, configured rates, model fit constants) are exempt.
DEFAULT_TOLERANCES: Tuple[Tolerance, ...] = (
    Tolerance("*seed*", math.inf, BOTH),
    Tolerance("*duration*", math.inf, BOTH),
    Tolerance("*rate_multiplier*", math.inf, BOTH),
    Tolerance("*arrived*", math.inf, BOTH),
    Tolerance("*knee*", math.inf, BOTH),
    Tolerance("*base_s*", math.inf, BOTH),
    Tolerance("*per_query_s*", math.inf, BOTH),
    # Wall-clock measurements vary with host load; sim-derived metrics carry
    # the real signal.  Throughput (events/requests per second) is still
    # gated, but with a wide band because it is wall-clocked.
    Tolerance("*wall_s*", math.inf, BOTH),
    Tolerance("*per_second*", 0.50, LOWER_IS_WORSE),
    Tolerance("*qps*", 0.05, LOWER_IS_WORSE),
    Tolerance("*goodput*", 0.05, LOWER_IS_WORSE),
    Tolerance("*p99*", 0.10, HIGHER_IS_WORSE),
    Tolerance("*p95*", 0.10, HIGHER_IS_WORSE),
    Tolerance("*p50*", 0.10, HIGHER_IS_WORSE),
    Tolerance("*latency*", 0.10, HIGHER_IS_WORSE),
    Tolerance("*shed_rate*", 0.10, HIGHER_IS_WORSE),
    Tolerance("*slo_attainment*", 0.02, LOWER_IS_WORSE),
    Tolerance("*slo_attained*", 0.0, LOWER_IS_WORSE),
    Tolerance("*retention*", 0.02, LOWER_IS_WORSE),
    Tolerance("*degrade_level*", 0.0, HIGHER_IS_WORSE),
)

#: Band for keys no tolerance matches (both directions).
DEFAULT_REL_TOL = 0.05

JsonValue = Union[None, bool, int, float, str, Sequence["JsonValue"], Mapping[str, "JsonValue"]]

# Entry statuses.
STATUS_OK = "ok"
STATUS_REGRESSION = "regression"
STATUS_IMPROVEMENT = "improvement"
STATUS_MISSING = "missing"  # in candidate
STATUS_NEW = "new"  # only in candidate


def flatten_metrics(value: JsonValue, prefix: str = "") -> Dict[str, float]:
    """Numeric leaves of a JSON document as ``dotted.path`` -> float."""
    out: Dict[str, float] = {}
    if isinstance(value, bool):
        out[prefix] = 1.0 if value else 0.0
    elif isinstance(value, (int, float)):
        out[prefix] = float(value)
    elif isinstance(value, Mapping):
        for key in value:
            path = f"{prefix}.{key}" if prefix else str(key)
            out.update(flatten_metrics(value[key], path))
    elif isinstance(value, Sequence) and not isinstance(value, str):
        for index, item in enumerate(value):
            path = f"{prefix}.{index}" if prefix else str(index)
            out.update(flatten_metrics(item, path))
    # strings / nulls carry no perf signal
    return out


def load_metrics_file(path: str) -> Dict[str, float]:
    """Parse a JSON file and flatten it to numeric leaves."""
    with open(path, "r", encoding="utf-8") as fh:
        try:
            document = json.load(fh)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"{path} is not valid JSON: {exc}") from exc
    return flatten_metrics(document)


@dataclass(frozen=True)
class DiffEntry:
    """One metric's comparison outcome."""

    key: str
    baseline: Optional[float]
    candidate: Optional[float]
    rel_delta: Optional[float]  # (candidate - baseline) / |baseline|
    rel_tol: float
    direction: str
    status: str

    def to_dict(self) -> Dict[str, object]:
        return {
            "key": self.key,
            "baseline": self.baseline,
            "candidate": self.candidate,
            "rel_delta": self.rel_delta,
            "rel_tol": None if math.isinf(self.rel_tol) else self.rel_tol,
            "direction": self.direction,
            "status": self.status,
        }


@dataclass
class PerfDiffReport:
    """Every compared key plus the regression verdict."""

    entries: List[DiffEntry] = field(default_factory=list)

    @property
    def regressions(self) -> List[DiffEntry]:
        return [e for e in self.entries if e.status == STATUS_REGRESSION]

    @property
    def improvements(self) -> List[DiffEntry]:
        return [e for e in self.entries if e.status == STATUS_IMPROVEMENT]

    @property
    def new_keys(self) -> List[DiffEntry]:
        return [e for e in self.entries if e.status == STATUS_NEW]

    @property
    def ok(self) -> bool:
        return not self.regressions

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1

    def to_dict(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "compared": len(self.entries),
            "regressions": [e.to_dict() for e in self.regressions],
            "improvements": [e.to_dict() for e in self.improvements],
            "new_keys": [e.key for e in self.new_keys],
        }

    def render(self, show_ok: bool = False) -> str:
        lines: List[str] = []
        for entry in self.entries:
            if entry.status == STATUS_OK and not show_ok:
                continue
            if entry.status == STATUS_NEW:
                lines.append(f"NEW         {entry.key} = {entry.candidate}")
                continue
            if entry.status == STATUS_MISSING:
                lines.append(
                    f"MISSING     {entry.key} (baseline {entry.baseline})"
                )
                continue
            delta = (
                f"{entry.rel_delta:+.2%}" if entry.rel_delta is not None
                and math.isfinite(entry.rel_delta) else "inf"
            )
            band = (
                "exempt" if math.isinf(entry.rel_tol)
                else f"±{entry.rel_tol:.0%} {entry.direction}"
            )
            lines.append(
                f"{entry.status.upper():<11} {entry.key}: "
                f"{entry.baseline} -> {entry.candidate} ({delta}, band {band})"
            )
        verdict = "OK" if self.ok else f"{len(self.regressions)} REGRESSION(S)"
        lines.append(
            f"perf-diff: {verdict} across {len(self.entries)} compared metrics"
        )
        return "\n".join(lines)


def _pick_tolerance(
    key: str, tolerances: Sequence[Tolerance], default_rel_tol: float
) -> Tolerance:
    for tolerance in tolerances:
        if tolerance.matches(key):
            return tolerance
    return Tolerance("*", default_rel_tol, BOTH)


def _classify(
    baseline: float, candidate: float, tolerance: Tolerance
) -> Tuple[Optional[float], str]:
    """(relative delta, status) for one present-in-both key."""
    if baseline == candidate:
        return 0.0, STATUS_OK
    scale = max(abs(baseline), _ABS_FLOOR)
    rel = (candidate - baseline) / scale
    if math.isinf(tolerance.rel_tol):
        return rel, STATUS_OK
    worse = (
        (rel > tolerance.rel_tol and tolerance.direction != LOWER_IS_WORSE)
        or (rel < -tolerance.rel_tol and tolerance.direction != HIGHER_IS_WORSE)
    )
    if worse:
        return rel, STATUS_REGRESSION
    if abs(rel) > tolerance.rel_tol:
        return rel, STATUS_IMPROVEMENT
    return rel, STATUS_OK


def diff_metrics(
    baseline: Mapping[str, float],
    candidate: Mapping[str, float],
    tolerances: Sequence[Tolerance] = DEFAULT_TOLERANCES,
    default_rel_tol: float = DEFAULT_REL_TOL,
) -> PerfDiffReport:
    """Compare two flattened metric maps under the tolerance bands."""
    if default_rel_tol < 0:
        raise ConfigurationError("default tolerance cannot be negative")
    report = PerfDiffReport()
    for key in sorted(set(baseline) | set(candidate)):
        tolerance = _pick_tolerance(key, tolerances, default_rel_tol)
        base = baseline.get(key)
        cand = candidate.get(key)
        if base is None:
            report.entries.append(
                DiffEntry(key, None, cand, None, tolerance.rel_tol,
                          tolerance.direction, STATUS_NEW)
            )
            continue
        if cand is None:
            status = (
                STATUS_OK if math.isinf(tolerance.rel_tol) else STATUS_REGRESSION
            )
            report.entries.append(
                DiffEntry(key, base, None, None, tolerance.rel_tol,
                          tolerance.direction, status)
            )
            continue
        rel, status = _classify(base, cand, tolerance)
        report.entries.append(
            DiffEntry(key, base, cand, rel, tolerance.rel_tol,
                      tolerance.direction, status)
        )
    return report


def parse_tolerance_spec(spec: str) -> Tolerance:
    """Parse a CLI ``PATTERN=REL[:DIRECTION]`` tolerance override."""
    if "=" not in spec:
        raise ConfigurationError(
            f"tolerance spec {spec!r} must look like PATTERN=REL[:DIRECTION]"
        )
    pattern, _, rest = spec.partition("=")
    value, _, direction = rest.partition(":")
    try:
        rel_tol = float(value)
    except ValueError as exc:
        raise ConfigurationError(
            f"tolerance value in {spec!r} is not a number"
        ) from exc
    return Tolerance(pattern, rel_tol, direction or BOTH)


def diff_files(
    baseline_path: str,
    candidate_path: str,
    extra_tolerances: Sequence[Tolerance] = (),
    default_rel_tol: float = DEFAULT_REL_TOL,
) -> PerfDiffReport:
    """Load, flatten, and diff two JSON metric files.

    ``extra_tolerances`` take precedence over the defaults (first match
    wins), so CLI overrides can tighten or loosen any band.
    """
    tolerances = tuple(extra_tolerances) + DEFAULT_TOLERANCES
    return diff_metrics(
        load_metrics_file(baseline_path),
        load_metrics_file(candidate_path),
        tolerances=tolerances,
        default_rel_tol=default_rel_tol,
    )


def update_baseline(
    baseline_path: str,
    candidate_path: str,
    run_dir: Optional[str] = None,
    seed: int = 0,
) -> Optional[str]:
    """Rewrite the checked-in baseline JSON with the candidate document.

    The candidate is re-serialized (``indent=2, sort_keys=True``) so the
    checked-in file stays canonically formatted regardless of how the bench
    wrote it.  When ``run_dir`` is given, a run manifest recording the
    update (old and new flattened metrics, content digest of the new
    baseline) is registered there, so baseline bumps leave an audit trail
    instead of a bare diff; returns the manifest path, else ``None``.
    """
    old_metrics = (
        load_metrics_file(baseline_path)
        if os.path.exists(baseline_path)
        else {}
    )
    with open(candidate_path, "r", encoding="utf-8") as fh:
        try:
            document = json.load(fh)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"{candidate_path} is not valid JSON: {exc}"
            ) from exc
    with open(baseline_path, "w", encoding="utf-8") as fh:
        json.dump(document, fh, indent=2, sort_keys=True)
        fh.write("\n")
    if run_dir is None:
        return None
    # Late import: repro.obs.runs imports this module.
    from .runs import RunManifest, RunRegistry

    manifest = RunManifest.build(
        label="perf-baseline-update",
        seed=seed,
        config={"baseline": baseline_path, "candidate": candidate_path},
        workload={"kind": "perf-diff-baseline-update"},
        metrics={
            "old": dict(old_metrics),
            "new": flatten_metrics(document),
        },
    )
    manifest.add_artifact("baseline", baseline_path)
    return RunRegistry(run_dir).register(manifest)
