"""Deterministic state digests and run-to-run divergence detection.

A simulation run is a pure function of its seed, so two runs of the same
scenario should walk *identical* internal states.  This module makes that
checkable: a :class:`DigestRecorder` samples a small counter snapshot every
``interval`` steps (event-queue clock, queue depths, completion counters),
canonicalizes it to JSON, and hashes it.  The resulting digest sequence is
tiny — O(run length / interval) — and rides along in the run manifest
(:mod:`repro.obs.runs`), where :func:`diverge_digest_entries` can answer the
question every cross-run comparison rests on: *are these two runs the same,
and if not, where did they first diverge?*

Digest payloads deliberately carry only simulated-clock quantities and
integer counters; wall time never enters a digest, so digests are
byte-identical across hosts for a given seed.  Each captured digest is also
emitted as an instant on the tracer's ``DIGEST_TRACK`` so Chrome-trace
exports show the checkpoints inline with the spans they bracket.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from ..errors import ConfigurationError
from .tracing import DIGEST_TRACK, SpanRecord

#: Hex digits kept from the sha256 — plenty to make collisions between two
#: runs of the same scenario practically impossible, short enough to read.
DIGEST_HEX_CHARS = 16


def canonical_json(payload: object) -> str:
    """The canonical (sorted-key, compact) JSON form used for hashing."""
    try:
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError) as exc:
        raise ConfigurationError(
            f"digest payload is not JSON-canonicalizable: {exc}"
        ) from exc


def state_digest(payload: object) -> str:
    """Short sha256 hex digest of a payload's canonical JSON form."""
    encoded = canonical_json(payload).encode("utf-8")
    return hashlib.sha256(encoded).hexdigest()[:DIGEST_HEX_CHARS]


@dataclass(frozen=True)
class DigestEntry:
    """One captured state checkpoint.

    ``tick`` is the recorder's step count at capture (its position in the
    run), ``sim_time`` the simulated clock, ``state`` the counter snapshot
    the digest was computed over (kept so a divergence report can say *what*
    differed, not just *that* something did).
    """

    index: int
    tick: int
    sim_time: float
    digest: str
    state: Dict[str, object]

    def to_dict(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "tick": self.tick,
            "sim_time": self.sim_time,
            "digest": self.digest,
            "state": dict(self.state),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "DigestEntry":
        return cls(
            index=int(data["index"]),  # type: ignore[arg-type]
            tick=int(data["tick"]),  # type: ignore[arg-type]
            sim_time=float(data["sim_time"]),  # type: ignore[arg-type]
            digest=str(data["digest"]),
            state=dict(data.get("state", {})),  # type: ignore[arg-type]
        )


class DigestRecorder:
    """Samples deterministic state digests every ``interval`` ticks.

    Call :meth:`tick` once per simulation step (event pop, tile, matrix
    cell) with the current sim time and the counter snapshot; every
    ``interval``-th call captures a digest.  :meth:`capture` forces one
    (used for the end-of-run summary digest so even a tail perturbation
    shorter than one interval is caught).
    """

    def __init__(self, interval: int = 256, label: str = "run") -> None:
        if interval < 1:
            raise ConfigurationError("digest interval must be >= 1")
        self.interval = interval
        self.label = label
        self.entries: List[DigestEntry] = []
        self._ticks = 0

    @property
    def ticks(self) -> int:
        return self._ticks

    def tick(self, sim_time: float, **state: object) -> Optional[DigestEntry]:
        """Count one step; capture a digest on every ``interval``-th call."""
        self._ticks += 1
        if self._ticks % self.interval:
            return None
        return self.capture(sim_time, **state)

    def capture(self, sim_time: float, **state: object) -> DigestEntry:
        """Unconditionally capture one digest at the current step count."""
        payload = {
            "label": self.label,
            "tick": self._ticks,
            "sim_time": float(sim_time),
            "state": state,
        }
        entry = DigestEntry(
            index=len(self.entries),
            tick=self._ticks,
            sim_time=float(sim_time),
            digest=state_digest(payload),
            state=dict(state),
        )
        self.entries.append(entry)
        from . import get_tracer  # late import: repro.obs imports this module

        tracer = get_tracer()
        if tracer.enabled:
            tracer.instant(
                f"digest/{self.label}/{entry.index}",
                sim_time=entry.sim_time,
                track=DIGEST_TRACK,
                attrs={"digest": entry.digest, "tick": entry.tick},
            )
        return entry


@dataclass(frozen=True)
class Divergence:
    """The first digest mismatch between two runs."""

    index: int
    tick_a: Optional[int]
    tick_b: Optional[int]
    sim_time_a: Optional[float]
    sim_time_b: Optional[float]
    digest_a: Optional[str]
    digest_b: Optional[str]
    changed_keys: List[str]
    state_a: Dict[str, object]
    state_b: Dict[str, object]
    last_match_index: Optional[int]
    last_match_sim_time: Optional[float]

    def to_dict(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "tick_a": self.tick_a,
            "tick_b": self.tick_b,
            "sim_time_a": self.sim_time_a,
            "sim_time_b": self.sim_time_b,
            "digest_a": self.digest_a,
            "digest_b": self.digest_b,
            "changed_keys": list(self.changed_keys),
            "state_a": dict(self.state_a),
            "state_b": dict(self.state_b),
            "last_match_index": self.last_match_index,
            "last_match_sim_time": self.last_match_sim_time,
        }


@dataclass
class DivergenceReport:
    """Outcome of comparing two runs' digest tracks."""

    run_a: str
    run_b: str
    compared: int
    total_a: int
    total_b: int
    divergence: Optional[Divergence] = None

    @property
    def diverged(self) -> bool:
        return self.divergence is not None

    def to_dict(self) -> Dict[str, object]:
        return {
            "run_a": self.run_a,
            "run_b": self.run_b,
            "compared": self.compared,
            "total_a": self.total_a,
            "total_b": self.total_b,
            "diverged": self.diverged,
            "divergence": (
                self.divergence.to_dict() if self.divergence else None
            ),
        }

    def render(self) -> str:
        lines = [
            f"divergence check: {self.run_a} vs {self.run_b} "
            f"({self.compared} digests compared; "
            f"{self.total_a} vs {self.total_b} recorded)"
        ]
        if self.divergence is None:
            lines.append("no divergence: digest tracks are identical")
            return "\n".join(lines)
        div = self.divergence
        if div.digest_a is None or div.digest_b is None:
            present = "a" if div.digest_b is None else "b"
            lines.append(
                f"DIVERGED at digest #{div.index}: run {present} has digests "
                "past the other's end (runs differ in length)"
            )
        else:
            lines.append(
                f"DIVERGED at digest #{div.index} "
                f"(sim t={div.sim_time_a:.6g}s vs {div.sim_time_b:.6g}s): "
                f"{div.digest_a} != {div.digest_b}"
            )
            if div.changed_keys:
                for key in div.changed_keys:
                    lines.append(
                        f"  {key}: {div.state_a.get(key)!r} "
                        f"-> {div.state_b.get(key)!r}"
                    )
        if div.last_match_index is not None:
            lines.append(
                f"  last matching digest: #{div.last_match_index} "
                f"at sim t={div.last_match_sim_time:.6g}s"
            )
        return "\n".join(lines)


def _changed_keys(
    state_a: Mapping[str, object], state_b: Mapping[str, object]
) -> List[str]:
    keys = sorted(set(state_a) | set(state_b))
    return [k for k in keys if state_a.get(k) != state_b.get(k)]


def diverge_digest_entries(
    entries_a: Sequence[DigestEntry],
    entries_b: Sequence[DigestEntry],
    run_a: str = "a",
    run_b: str = "b",
) -> DivergenceReport:
    """Find the first digest mismatch between two recorded digest tracks.

    Entries are compared pairwise in index order; the first differing digest
    (or, failing that, a length mismatch) is the divergence point.  Two
    empty tracks compare equal — a run that recorded no digests carries no
    divergence evidence either way.
    """
    compared = min(len(entries_a), len(entries_b))
    report = DivergenceReport(
        run_a=run_a,
        run_b=run_b,
        compared=compared,
        total_a=len(entries_a),
        total_b=len(entries_b),
    )
    last_match: Optional[DigestEntry] = None
    for i in range(compared):
        a, b = entries_a[i], entries_b[i]
        if a.digest == b.digest:
            last_match = a
            continue
        report.divergence = Divergence(
            index=i,
            tick_a=a.tick,
            tick_b=b.tick,
            sim_time_a=a.sim_time,
            sim_time_b=b.sim_time,
            digest_a=a.digest,
            digest_b=b.digest,
            changed_keys=_changed_keys(a.state, b.state),
            state_a=dict(a.state),
            state_b=dict(b.state),
            last_match_index=last_match.index if last_match else None,
            last_match_sim_time=last_match.sim_time if last_match else None,
        )
        return report
    if len(entries_a) != len(entries_b):
        longer = entries_a if len(entries_a) > len(entries_b) else entries_b
        extra = longer[compared]
        report.divergence = Divergence(
            index=compared,
            tick_a=extra.tick if longer is entries_a else None,
            tick_b=extra.tick if longer is entries_b else None,
            sim_time_a=extra.sim_time if longer is entries_a else None,
            sim_time_b=extra.sim_time if longer is entries_b else None,
            digest_a=extra.digest if longer is entries_a else None,
            digest_b=extra.digest if longer is entries_b else None,
            changed_keys=[],
            state_a=dict(extra.state) if longer is entries_a else {},
            state_b=dict(extra.state) if longer is entries_b else {},
            last_match_index=last_match.index if last_match else None,
            last_match_sim_time=last_match.sim_time if last_match else None,
        )
    return report


def spans_in_window(
    spans: Iterable[SpanRecord],
    start: Optional[float],
    end: Optional[float],
) -> List[SpanRecord]:
    """Sim-clocked spans overlapping ``[start, end]`` — divergence context.

    Given the span log of a diverged run (e.g. read back from a streamed
    JSONL artifact), returns the spans surrounding the first mismatched
    digest: everything whose sim window overlaps the interval between the
    last matching digest and the divergence point.
    """
    out: List[SpanRecord] = []
    for span in spans:
        if span.sim_start is None or span.sim_end is None:
            continue
        if start is not None and span.sim_end < start:
            continue
        if end is not None and span.sim_start > end:
            continue
        out.append(span)
    return out
