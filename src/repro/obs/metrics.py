"""Metrics registry: labeled counters, gauges, and streaming histograms.

The registry is the numeric half of the observability layer (tracing is the
temporal half).  Instruments follow the Prometheus data model so the text
exporter in :mod:`repro.obs.export` is a straight serialization:

* :class:`Counter` — monotone totals (pages fetched, GC invocations);
* :class:`Gauge` — last-value samples (queue depth, utilization);
* :class:`Histogram` — fixed-bucket streaming distributions with p50/p95/p99
  summaries interpolated from the bucket counts (per-tile latency).

Every instrument supports labels (``counter.inc(1, channel=3)``), and
re-requesting a name from a registry returns the existing instrument, so hot
paths can look instruments up on every call without growing state.

Disabled observability must cost nothing: :class:`NullMetricsRegistry` hands
out shared no-op instruments whose methods are empty, and the module-level
:data:`NULL_REGISTRY` singleton is what :func:`repro.obs.get_registry`
returns until someone installs a live registry.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError

# Label sets are stored as sorted tuples so lookup is hashable + order-free.
LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, object]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class _Instrument:
    """Shared bookkeeping for one named metric family."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "") -> None:
        if not name or not name.replace("_", "a").replace(":", "a").isalnum():
            raise ConfigurationError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help
        self._lock = threading.Lock()

    def samples(self) -> List[Tuple[LabelKey, float]]:  # pragma: no cover - abstract
        raise NotImplementedError


class Counter(_Instrument):
    """A monotonically increasing total, optionally split by labels."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._values: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if amount < 0:
            raise ConfigurationError("counters only go up")
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum over every label combination."""
        return sum(self._values.values())

    def samples(self) -> List[Tuple[LabelKey, float]]:
        with self._lock:
            return sorted(self._values.items())


class Gauge(_Instrument):
    """A value that can move both ways (queue depth, utilization)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._values: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: object) -> None:
        with self._lock:
            self._values[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: object) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def samples(self) -> List[Tuple[LabelKey, float]]:
        with self._lock:
            return sorted(self._values.items())


# Default buckets span sub-microsecond device events to multi-second runs.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5, 1.0, 5.0, 10.0,
)


class _HistogramState:
    """Bucket counts plus running aggregates for one label set."""

    __slots__ = ("bucket_counts", "count", "sum", "min", "max")

    def __init__(self, num_buckets: int) -> None:
        self.bucket_counts = [0] * (num_buckets + 1)  # trailing +Inf bucket
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float, buckets: Sequence[float]) -> None:
        """Fold one observation in (``buckets`` are the family's bounds)."""
        self.bucket_counts[bucket_index(buckets, value)] += 1
        self.count += 1
        self.sum += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    def merge(self, other: "_HistogramState") -> None:
        """Fold another state (same bucket bounds) into this one.

        Histograms over fixed buckets are mergeable exactly: counts add,
        extrema combine, and the merged percentile interpolation is
        identical to having observed both streams into one state.  This is
        what lets :mod:`repro.obs.streaming` keep O(windows) memory while
        reporting whole-run aggregates.
        """
        if len(other.bucket_counts) != len(self.bucket_counts):
            raise ConfigurationError(
                "cannot merge histogram states with different bucket counts"
            )
        for i, count in enumerate(other.bucket_counts):
            self.bucket_counts[i] += count
        self.count += other.count
        self.sum += other.sum
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)


def bucket_index(buckets: Sequence[float], value: float) -> int:
    """Index of the first bucket containing ``value`` (``le`` semantics)."""
    for i, bound in enumerate(buckets):
        if value <= bound:
            return i
    return len(buckets)


def percentile_from_state(
    buckets: Sequence[float], state: _HistogramState, p: float, name: str = ""
) -> float:
    """The ``p``-th percentile (0-100) interpolated from bucket counts."""
    if not (0.0 <= p <= 100.0):
        raise ConfigurationError("percentile must be in [0, 100]")
    if state.count == 0:
        raise ConfigurationError(f"histogram {name} has no observations")
    rank = p / 100.0 * state.count
    cumulative = 0
    for i, bucket_count in enumerate(state.bucket_counts):
        if bucket_count == 0:
            continue
        if cumulative + bucket_count >= rank:
            lower = buckets[i - 1] if i > 0 else 0.0
            lower = max(lower, state.min) if cumulative == 0 else lower
            if i >= len(buckets):  # +Inf bucket: no upper bound
                return state.max
            upper = buckets[i]
            fraction = (rank - cumulative) / bucket_count
            estimate = lower + fraction * (upper - lower)
            return min(max(estimate, state.min), state.max)
        cumulative += bucket_count
    return state.max


class Histogram(_Instrument):
    """Fixed-bucket streaming histogram with interpolated percentiles.

    Observations land in the first bucket whose upper bound contains them
    (Prometheus ``le`` semantics).  Percentiles are linearly interpolated
    within the containing bucket, clamped to the observed min/max so exact
    values survive single-bucket distributions.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ConfigurationError("histogram buckets must be sorted and unique")
        self.buckets = bounds
        self._states: Dict[LabelKey, _HistogramState] = {}

    def _state(self, labels: Dict[str, object]) -> _HistogramState:
        key = _label_key(labels)
        state = self._states.get(key)
        if state is None:
            state = _HistogramState(len(self.buckets))
            self._states[key] = state
        return state

    def observe(self, value: float, **labels: object) -> None:
        value = float(value)
        with self._lock:
            self._state(labels).observe(value, self.buckets)

    def count(self, **labels: object) -> int:
        state = self._states.get(_label_key(labels))
        return state.count if state else 0

    def sum(self, **labels: object) -> float:
        state = self._states.get(_label_key(labels))
        return state.sum if state else 0.0

    def percentile(self, p: float, **labels: object) -> float:
        """The ``p``-th percentile (0-100), bucket-interpolated."""
        if not (0.0 <= p <= 100.0):
            raise ConfigurationError("percentile must be in [0, 100]")
        state = self._states.get(_label_key(labels))
        if state is None or state.count == 0:
            raise ConfigurationError(f"histogram {self.name} has no observations")
        return percentile_from_state(self.buckets, state, p, name=self.name)

    def quantiles(self, **labels: object) -> Dict[str, float]:
        """The p50/p95/p99 summary the ISSUE-level analyses read."""
        return {
            "p50": self.percentile(50.0, **labels),
            "p95": self.percentile(95.0, **labels),
            "p99": self.percentile(99.0, **labels),
            "p99.9": self.percentile(99.9, **labels),
        }

    def quantiles_or_none(self, **labels: object) -> Optional[Dict[str, float]]:
        """:meth:`quantiles`, or ``None`` when nothing was observed.

        Reporting paths summarize histograms that may legitimately be empty
        (a run that shed everything, a fault class that never fired); this
        keeps them free of try/except around :meth:`percentile`.
        """
        state = self._states.get(_label_key(labels))
        if state is None or state.count == 0:
            return None
        return self.quantiles(**labels)

    def samples(self) -> List[Tuple[LabelKey, float]]:
        """(labels, sum) pairs — bucket detail is exporter-specific."""
        with self._lock:
            return sorted((key, state.sum) for key, state in self._states.items())

    def states(self) -> List[Tuple[LabelKey, "_HistogramState"]]:
        with self._lock:
            return sorted(self._states.items(), key=lambda kv: kv[0])


class MetricsRegistry:
    """Name-keyed instrument store, usable globally or injected.

    ``counter``/``gauge``/``histogram`` are get-or-create: the first call
    registers the instrument, later calls return it, and requesting an
    existing name as a different kind raises :class:`ConfigurationError`.
    """

    enabled = True

    def __init__(self) -> None:
        self._instruments: Dict[str, _Instrument] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, cls, name: str, help: str, **kwargs) -> _Instrument:
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ConfigurationError(
                        f"metric {name!r} already registered as {existing.kind}"
                    )
                return existing
            instrument = cls(name, help, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def get(self, name: str) -> Optional[_Instrument]:
        return self._instruments.get(name)

    def instruments(self) -> List[_Instrument]:
        with self._lock:
            return [self._instruments[name] for name in sorted(self._instruments)]

    def __iter__(self) -> Iterable[_Instrument]:
        return iter(self.instruments())

    def __len__(self) -> int:
        return len(self._instruments)


class _NullInstrument:
    """A do-nothing instrument shared by every disabled call site."""

    name = "null"
    help = ""
    kind = "null"

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        pass

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        pass

    def set(self, value: float, **labels: object) -> None:
        pass

    def observe(self, value: float, **labels: object) -> None:
        pass

    def value(self, **labels: object) -> float:
        return 0.0

    def total(self) -> float:
        return 0.0

    def samples(self) -> List[Tuple[LabelKey, float]]:
        return []

    def quantiles_or_none(self, **labels: object) -> None:
        return None


_NULL_INSTRUMENT = _NullInstrument()


class NullMetricsRegistry:
    """The zero-overhead registry installed when observability is off.

    Every factory returns one shared no-op instrument; ``enabled`` is False
    so hot paths can skip label preparation entirely.
    """

    enabled = False

    def counter(self, name: str, help: str = "") -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, help: str = "") -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def get(self, name: str) -> None:
        return None

    def instruments(self) -> List[_Instrument]:
        return []

    def __iter__(self):
        return iter(())

    def __len__(self) -> int:
        return 0


NULL_REGISTRY = NullMetricsRegistry()
