"""Sim-time-aware span tracer for the ECSSD stack.

The event simulator and the analytic pipeline both produce *simulated*
timestamps (seconds on the device clock), while deployment, calibration, and
host-side orchestration happen in *wall* time.  A :class:`SpanRecord`
therefore carries both clocks: ``sim_start``/``sim_end`` when the span maps
to device time (a tile's FP32 fetch, one flash command), and
``wall_start``/``wall_end`` measured with ``time.perf_counter`` for every
context-manager span.

Three ways to record:

* ``with tracer.span("deploy", queries=8):`` — wall-clocked, nests via an
  explicit stack, optional ``set_sim_window`` once the model has timed it;
* ``tracer.add_span("tile3/fp32_fetch", sim_start, sim_end, track=...)`` —
  pre-timed spans from the analytic model;
* ``tracer.instant("gc", plane=...)`` — point events (GC, wear-level).

``tracer.add_command_trace`` folds the per-flash-command
:class:`repro.ssd.trace.TraceEvent` log into the same span list (one shared
schema), so Chrome-trace export shows tile pipelines and channel busy
timelines side by side.  :class:`NullTracer` is the zero-overhead stand-in
used while observability is disabled.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from ..errors import ConfigurationError, ObservabilityError

#: Track names used by the built-in instrumentation (one Chrome-trace "thread"
#: per track).  Channel tracks are ``flash/ch<N>``.
PIPELINE_TRACK = "pipeline"
INT4_TRACK = "int4-module"
FP32_TRACK = "fp32-module"
HOST_TRACK = "host"
CLUSTER_TRACK = "cluster"
SERVE_TRACK = "serve"
FAULT_TRACK = "faults"
DIGEST_TRACK = "digest"
FLASH_TRACK_PREFIX = "flash/ch"


@dataclass
class SpanRecord:
    """One finished span (or instant event) in the unified schema."""

    name: str
    track: str = PIPELINE_TRACK
    sim_start: Optional[float] = None
    sim_end: Optional[float] = None
    wall_start: Optional[float] = None
    wall_end: Optional[float] = None
    parent: Optional[str] = None
    depth: int = 0
    kind: str = "span"  # "span" | "instant"
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def sim_duration(self) -> Optional[float]:
        if self.sim_start is None or self.sim_end is None:
            return None
        return self.sim_end - self.sim_start

    @property
    def wall_duration(self) -> Optional[float]:
        if self.wall_start is None or self.wall_end is None:
            return None
        return self.wall_end - self.wall_start

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe flat form (used by the JSONL exporter)."""
        return {
            "type": self.kind,
            "name": self.name,
            "track": self.track,
            "sim_start": self.sim_start,
            "sim_end": self.sim_end,
            "wall_start": self.wall_start,
            "wall_end": self.wall_end,
            "parent": self.parent,
            "depth": self.depth,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SpanRecord":
        """Inverse of :meth:`to_dict` — rebuilds a record from a JSONL row.

        ``to_dict`` then ``from_dict`` round-trips every field, so a span
        log streamed to disk re-exports byte-identically
        (:func:`repro.obs.export.read_jsonl_spans`).
        """

        def _opt(value: object) -> Optional[float]:
            return None if value is None else float(value)  # type: ignore[arg-type]

        return cls(
            name=str(data["name"]),
            track=str(data.get("track", PIPELINE_TRACK)),
            sim_start=_opt(data.get("sim_start")),
            sim_end=_opt(data.get("sim_end")),
            wall_start=_opt(data.get("wall_start")),
            wall_end=_opt(data.get("wall_end")),
            parent=None if data.get("parent") is None else str(data["parent"]),
            depth=int(data.get("depth", 0)),  # type: ignore[arg-type]
            kind=str(data.get("type", "span")),
            attrs=dict(data.get("attrs") or {}),  # type: ignore[arg-type]
        )


class _OpenSpan:
    """Handle yielded by ``tracer.span`` while the span is running."""

    def __init__(self, tracer: "Tracer", record: SpanRecord) -> None:
        self._tracer = tracer
        self.record = record

    def set_sim_window(self, sim_start: float, sim_end: float) -> None:
        if sim_end < sim_start:
            raise ConfigurationError("sim window cannot end before it starts")
        self.record.sim_start = sim_start
        self.record.sim_end = sim_end

    def set_attr(self, key: str, value: object) -> None:
        self.record.attrs[key] = value

    def __enter__(self) -> "_OpenSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer._finish(self.record)


class Tracer:
    """Collects spans; the live implementation behind ``obs.get_tracer``.

    Two retention modes:

    * **in-memory** (default) — finished spans accumulate on :attr:`spans`;
      ``max_spans`` optionally caps the list, raising
      :class:`~repro.errors.ObservabilityError` instead of growing silently
      (the guard for long serving runs that forgot to stream);
    * **streaming** — :meth:`attach_sink` hands every finished span to a
      sink (:class:`repro.obs.streaming.StreamingSpanSink`) instead of the
      list, so memory stays bounded by the sink's reservoir/windows no
      matter how many spans the run emits.
    """

    enabled = True

    def __init__(self, max_spans: Optional[int] = None) -> None:
        if max_spans is not None and max_spans < 1:
            raise ConfigurationError("max_spans must be >= 1 (or None)")
        self.spans: List[SpanRecord] = []
        self.max_spans = max_spans
        self.sink = None  # duck-typed: .emit(SpanRecord)
        self._stack: List[SpanRecord] = []
        self._wall_origin = time.perf_counter()

    # --- recording -------------------------------------------------------------
    def _now(self) -> float:
        return time.perf_counter() - self._wall_origin

    def attach_sink(self, sink) -> None:
        """Stream finished spans to ``sink`` instead of :attr:`spans`."""
        if sink is None:
            raise ConfigurationError("attach_sink requires a sink; use detach_sink")
        self.sink = sink

    def detach_sink(self):
        """Stop streaming; returns the detached sink (or ``None``)."""
        sink, self.sink = self.sink, None
        return sink

    def _record(self, record: SpanRecord) -> None:
        """The single retention path every finished span goes through."""
        if self.sink is not None:
            self.sink.emit(record)
            return
        if self.max_spans is not None and len(self.spans) >= self.max_spans:
            raise ObservabilityError(
                f"tracer exceeded max_spans={self.max_spans} with no "
                "streaming sink attached; attach a "
                "repro.obs.streaming.StreamingSpanSink (e.g. "
                "ObservabilityConfig(jsonl_stream_out=...)) to hold memory "
                "bounded, or raise max_spans"
            )
        self.spans.append(record)

    def span(self, name: str, track: str = HOST_TRACK, **attrs: object) -> _OpenSpan:
        """A wall-clocked nesting span, used as a context manager."""
        parent = self._stack[-1] if self._stack else None
        record = SpanRecord(
            name=name,
            track=track,
            wall_start=self._now(),
            parent=parent.name if parent else None,
            depth=len(self._stack),
            attrs=dict(attrs),
        )
        self._stack.append(record)
        return _OpenSpan(self, record)

    def _finish(self, record: SpanRecord) -> None:
        record.wall_end = self._now()
        if self._stack and self._stack[-1] is record:
            self._stack.pop()
        self._record(record)

    def add_span(
        self,
        name: str,
        sim_start: float,
        sim_end: float,
        track: str = PIPELINE_TRACK,
        attrs: Optional[Dict[str, object]] = None,
    ) -> SpanRecord:
        """Record a pre-timed span on the simulated clock."""
        if sim_end < sim_start:
            raise ConfigurationError("sim span cannot end before it starts")
        parent = self._stack[-1] if self._stack else None
        record = SpanRecord(
            name=name,
            track=track,
            sim_start=sim_start,
            sim_end=sim_end,
            parent=parent.name if parent else None,
            depth=len(self._stack),
            attrs=dict(attrs or {}),
        )
        self._record(record)
        return record

    def instant(
        self,
        name: str,
        sim_time: Optional[float] = None,
        track: str = PIPELINE_TRACK,
        attrs: Optional[Dict[str, object]] = None,
    ) -> SpanRecord:
        """A point event (GC invocation, threshold crossing, ...)."""
        parent = self._stack[-1] if self._stack else None
        record = SpanRecord(
            name=name,
            track=track,
            sim_start=sim_time,
            sim_end=sim_time,
            wall_start=self._now(),
            wall_end=None,
            parent=parent.name if parent else None,
            depth=len(self._stack),
            kind="instant",
            attrs=dict(attrs or {}),
        )
        self._record(record)
        return record

    def add_command_trace(self, trace) -> int:
        """Fold a flash :class:`~repro.ssd.trace.CommandTrace` into the span list.

        Each :class:`~repro.ssd.trace.TraceEvent` becomes one span on its
        channel's ``flash/ch<N>`` track — the single shared schema both the
        tracer and ``CommandTrace.to_chrome_events`` use.
        """
        records = spans_from_command_trace(trace.events)
        for record in records:
            self._record(record)
        return len(records)

    # --- queries ---------------------------------------------------------------
    def tracks(self) -> List[str]:
        seen: List[str] = []
        for record in self.spans:
            if record.track not in seen:
                seen.append(record.track)
        return seen

    def find(
        self, name_prefix: str, track: Optional[str] = None
    ) -> List[SpanRecord]:
        """Spans whose name starts with ``name_prefix``.

        ``track`` additionally restricts matches to one track (exact match),
        so ``find("tile3/", track=FP32_TRACK)`` picks one tile's FP32 phases
        out of a trace that reuses the name prefix across tracks.
        """
        return [
            s for s in self.spans
            if s.name.startswith(name_prefix)
            and (track is None or s.track == track)
        ]

    def clear(self) -> None:
        self.spans.clear()
        self._stack.clear()

    def __len__(self) -> int:
        return len(self.spans)


class _NullOpenSpan:
    """Context manager returned by the disabled tracer: does nothing."""

    def set_sim_window(self, sim_start: float, sim_end: float) -> None:
        pass

    def set_attr(self, key: str, value: object) -> None:
        pass

    def __enter__(self) -> "_NullOpenSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_OPEN_SPAN = _NullOpenSpan()


class NullTracer:
    """Zero-overhead tracer installed while observability is disabled."""

    enabled = False
    spans: List[SpanRecord] = []
    sink = None
    max_spans: Optional[int] = None

    def attach_sink(self, sink) -> None:
        pass

    def detach_sink(self):
        return None

    def span(self, name: str, track: str = HOST_TRACK, **attrs: object) -> _NullOpenSpan:
        return _NULL_OPEN_SPAN

    def add_span(self, name, sim_start, sim_end, track=PIPELINE_TRACK, attrs=None):
        return None

    def instant(self, name, sim_time=None, track=PIPELINE_TRACK, attrs=None):
        return None

    def add_command_trace(self, trace) -> int:
        return 0

    def tracks(self) -> List[str]:
        return []

    def find(
        self, name_prefix: str, track: Optional[str] = None
    ) -> List[SpanRecord]:
        return []

    def clear(self) -> None:
        pass

    def __len__(self) -> int:
        return 0


NULL_TRACER = NullTracer()


def spans_from_command_trace(events: Iterable) -> List[SpanRecord]:
    """Convert flash :class:`~repro.ssd.trace.TraceEvent` rows to spans.

    Duck-typed on the TraceEvent fields (``channel``, ``package``, ``die``,
    ``kind``, ``submit_time``, ``finish_time``, ``sequence``) so the ssd
    package never needs to import this module at runtime.
    """
    records: List[SpanRecord] = []
    for event in events:
        kind = getattr(event.kind, "value", str(event.kind))
        attrs: Dict[str, object] = {
            "sequence": event.sequence,
            "channel": event.channel,
            "package": event.package,
            "die": event.die,
            "kind": kind,
        }
        # Phase decomposition (TraceEvents recorded before the profiler
        # existed, or hand-built ones, default to zero and are skipped).
        queue = getattr(event, "queue_time", 0.0)
        service = getattr(event, "service_time", 0.0)
        transfer = getattr(event, "transfer_time", 0.0)
        if queue or service or transfer:
            attrs["queue_s"] = queue
            attrs["service_s"] = service
            attrs["transfer_s"] = transfer
        records.append(
            SpanRecord(
                name=f"{kind} p{event.package}d{event.die}",
                track=f"{FLASH_TRACK_PREFIX}{event.channel}",
                sim_start=event.submit_time,
                sim_end=event.finish_time,
                attrs=attrs,
            )
        )
    return records
