"""Unified telemetry for the ECSSD stack: metrics, tracing, exporters, logging.

The paper's claims are statements about *where time goes* — transfer
interference on flash channels, MAC compute hiding under fetch, per-channel
balance under learned interleaving.  This package gives every layer of the
reproduction one way to report that:

* :mod:`repro.obs.metrics` — labeled counters/gauges/streaming histograms in
  a :class:`MetricsRegistry`;
* :mod:`repro.obs.tracing` — a sim-time-aware span :class:`Tracer` (spans
  carry both the simulated device clock and wall time, nest, and absorb the
  per-flash-command trace);
* :mod:`repro.obs.export` — JSON-lines, Prometheus text exposition, and
  Chrome trace-event JSON (open the file in Perfetto / ``chrome://tracing``).

Instrumented call sites fetch the process-global recorder via
:func:`get_registry` / :func:`get_tracer`; both default to shared no-op
singletons, so with observability disabled the stack's timing results are
bit-identical to an uninstrumented build.  :func:`configure` installs live
recorders (optionally from an :class:`repro.config.ObservabilityConfig`) and
returns an :class:`Observability` session whose :meth:`Observability.flush`
writes every configured output file; it also works as a context manager that
restores the previous recorders on exit.

:func:`configure_logging` wires stdlib logging (``-v``/``-vv`` on the CLI);
the package-root ``repro`` logger carries a ``NullHandler`` (installed in
:mod:`repro.__init__`) so library users never see spurious output.
"""

from __future__ import annotations

import logging
from typing import List, Optional

from .causal import (
    AttributionReport,
    CausalCollector,
    NullCausalCollector,
    RequestTrace,
    TailExemplarStore,
    get_collector,
    set_collector,
    trace_spans,
    trace_to_chrome,
)
from .digest import (
    DigestEntry,
    DigestRecorder,
    Divergence,
    DivergenceReport,
    canonical_json,
    diverge_digest_entries,
    spans_in_window,
    state_digest,
)
from .export import (
    command_trace_events,
    read_jsonl_spans,
    spans_to_chrome_events,
    to_chrome_trace,
    to_jsonl,
    to_prometheus_text,
    write_chrome_trace,
    write_jsonl,
    write_prometheus,
)
from .health import (
    AlertEvent,
    BurnRatePolicy,
    HealthReport,
    SloObjective,
    burn_rate_series,
    evaluate_serving_health,
)
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
    NULL_REGISTRY,
)
from .perfdiff import (
    PerfDiffReport,
    Tolerance,
    diff_files,
    diff_metrics,
    flatten_metrics,
)
from .profile import (
    ChannelBalance,
    InterferenceStats,
    ProfileReport,
    ResourceProfile,
    TileAttribution,
    profile_trace,
)
from .runs import (
    RunManifest,
    RunRegistry,
    compare_many,
    compare_runs,
    derive_run_id,
    diverge_runs,
    file_digest,
)
from .streaming import (
    JsonlSpanWriter,
    SpanReservoir,
    StreamingSpanSink,
    WindowedAggregator,
)
from .tracing import (
    DIGEST_TRACK,
    CLUSTER_TRACK,
    FAULT_TRACK,
    FLASH_TRACK_PREFIX,
    FP32_TRACK,
    HOST_TRACK,
    INT4_TRACK,
    PIPELINE_TRACK,
    SERVE_TRACK,
    NullTracer,
    NULL_TRACER,
    SpanRecord,
    Tracer,
    spans_from_command_trace,
)

__all__ = [
    "MetricsRegistry",
    "NullMetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_BUCKETS",
    "Tracer",
    "NullTracer",
    "SpanRecord",
    "Observability",
    "configure",
    "configure_logging",
    "get_registry",
    "get_tracer",
    "set_registry",
    "set_tracer",
    "register_standard_metrics",
    "to_chrome_trace",
    "to_jsonl",
    "to_prometheus_text",
    "write_chrome_trace",
    "write_jsonl",
    "write_prometheus",
    "command_trace_events",
    "spans_to_chrome_events",
    "spans_from_command_trace",
    "profile_trace",
    "ProfileReport",
    "TileAttribution",
    "ResourceProfile",
    "ChannelBalance",
    "InterferenceStats",
    "evaluate_serving_health",
    "burn_rate_series",
    "HealthReport",
    "AlertEvent",
    "SloObjective",
    "BurnRatePolicy",
    "diff_files",
    "diff_metrics",
    "flatten_metrics",
    "PerfDiffReport",
    "Tolerance",
    "PIPELINE_TRACK",
    "INT4_TRACK",
    "FP32_TRACK",
    "HOST_TRACK",
    "CLUSTER_TRACK",
    "SERVE_TRACK",
    "FAULT_TRACK",
    "DIGEST_TRACK",
    "FLASH_TRACK_PREFIX",
    # run provenance + streaming telemetry
    "DigestEntry",
    "DigestRecorder",
    "Divergence",
    "DivergenceReport",
    "canonical_json",
    "diverge_digest_entries",
    "spans_in_window",
    "state_digest",
    "read_jsonl_spans",
    "RunManifest",
    "RunRegistry",
    "compare_many",
    "compare_runs",
    "derive_run_id",
    "diverge_runs",
    "file_digest",
    "JsonlSpanWriter",
    "SpanReservoir",
    "StreamingSpanSink",
    "WindowedAggregator",
    # causal tracing + tail attribution
    "AttributionReport",
    "CausalCollector",
    "NullCausalCollector",
    "RequestTrace",
    "TailExemplarStore",
    "get_collector",
    "set_collector",
    "trace_spans",
    "trace_to_chrome",
]

_registry = NULL_REGISTRY
_tracer = NULL_TRACER


def get_registry():
    """The process-global metrics registry (a no-op until configured)."""
    return _registry


def get_tracer():
    """The process-global span tracer (a no-op until configured)."""
    return _tracer


def set_registry(registry) -> None:
    global _registry
    _registry = registry if registry is not None else NULL_REGISTRY


def set_tracer(tracer) -> None:
    global _tracer
    _tracer = tracer if tracer is not None else NULL_TRACER


def register_standard_metrics(registry: MetricsRegistry) -> None:
    """Pre-register the stack's core instrument families.

    Exports then always contain the headline counters (GC invocations,
    pages fetched, relocations) and the per-tile latency histogram even for
    runs that never exercise those paths — a scrape contract, not an
    accident of which code ran.
    """
    registry.counter(
        "ecssd_pages_fetched_total", "FP32 candidate pages fetched, by channel"
    )
    registry.counter(
        "flash_commands_total", "flash commands issued by the event simulator"
    )
    registry.counter("ftl_gc_total", "garbage-collection invocations")
    registry.counter("ftl_pages_relocated_total", "valid pages moved by GC")
    registry.counter("ftl_pages_written_total", "pages programmed through the FTL")
    registry.counter("ecssd_inference_runs_total", "inference passes executed")
    registry.counter("ecssd_inference_queries_total", "queries served")
    registry.histogram(
        "ecssd_tile_latency_seconds", "steady-state cost of one pipeline tile"
    )


class Observability:
    """A live telemetry session: registry + tracer + output destinations.

    ``install`` swaps the globals to this session's recorders (keeping the
    previous pair for restoration); ``flush`` writes whatever outputs the
    config names and returns the paths.  Usable as a context manager::

        with obs.configure(ObservabilityConfig(trace_out="t.json")) as session:
            device.run_inference(features)
        # t.json written, previous recorders restored
    """

    def __init__(
        self,
        config=None,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.config = config
        metrics_on = config is None or getattr(config, "metrics_enabled", True)
        tracing_on = config is None or getattr(config, "tracing_enabled", True)
        self.registry = registry or (
            MetricsRegistry() if metrics_on else NULL_REGISTRY
        )
        max_spans = getattr(config, "max_spans", None)
        self.tracer = tracer or (
            Tracer(max_spans=max_spans) if tracing_on else NULL_TRACER
        )
        if isinstance(self.registry, MetricsRegistry):
            register_standard_metrics(self.registry)
        self.sink: Optional[StreamingSpanSink] = None
        stream_out = getattr(config, "jsonl_stream_out", None)
        reservoir = getattr(config, "span_reservoir", None)
        window_s = getattr(config, "aggregate_window_s", None)
        if self.tracer.enabled and (
            stream_out is not None
            or reservoir is not None
            or window_s is not None
        ):
            self.sink = StreamingSpanSink(
                path=stream_out,
                reservoir=reservoir,
                seed=getattr(config, "span_seed", 0),
                window_s=window_s,
            )
            self.tracer.attach_sink(self.sink)
        self._previous = None

    def install(self) -> "Observability":
        # Idempotent: a second install (e.g. configure() followed by a
        # ``with`` block) must not clobber the saved previous pair, or
        # uninstall would "restore" this session's own recorders.
        if self._previous is None:
            self._previous = (_registry, _tracer)
        set_registry(self.registry)
        set_tracer(self.tracer)
        return self

    def uninstall(self) -> None:
        if self._previous is not None:
            set_registry(self._previous[0])
            set_tracer(self._previous[1])
            self._previous = None

    def flush(self) -> List[str]:
        """Write every output path named in the config; returns the paths."""
        written: List[str] = []
        config = self.config
        if config is None:
            return written
        trace_out = getattr(config, "trace_out", None)
        if trace_out and self.tracer.enabled:
            write_chrome_trace(trace_out, self.tracer)
            written.append(trace_out)
        metrics_out = getattr(config, "metrics_out", None)
        if metrics_out and self.registry.enabled:
            write_prometheus(metrics_out, self.registry)
            written.append(metrics_out)
        jsonl_out = getattr(config, "jsonl_out", None)
        if jsonl_out:
            write_jsonl(
                jsonl_out,
                self.tracer if self.tracer.enabled else None,
                self.registry if self.registry.enabled else None,
            )
            written.append(jsonl_out)
        if self.sink is not None:
            self.sink.close()
            if self.sink.path is not None:
                written.append(self.sink.path)
        return written

    def __enter__(self) -> "Observability":
        return self.install()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.flush()
        self.uninstall()


def configure(config=None, install: bool = True) -> Observability:
    """Create (and by default install) a live telemetry session.

    ``config`` is an :class:`repro.config.ObservabilityConfig` (or any object
    with its attributes); ``None`` enables both recorders with no outputs.
    """
    session = Observability(config=config)
    if install:
        session.install()
    return session


_LOG_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"
_LOG_HANDLER_FLAG = "_repro_obs_handler"


def configure_logging(verbosity: int = 0, stream=None) -> logging.Logger:
    """Wire the ``repro`` logger tree to stderr at a verbosity level.

    ``0`` keeps the library quiet (WARNING), ``1`` (``-v``) shows per-run
    INFO lines, ``2+`` (``-vv``) turns on DEBUG from the hot paths.
    Idempotent: re-invocation adjusts the level instead of stacking handlers.
    """
    level = {0: logging.WARNING, 1: logging.INFO}.get(max(0, verbosity), logging.DEBUG)
    root = logging.getLogger("repro")
    handler = None
    for existing in root.handlers:
        if getattr(existing, _LOG_HANDLER_FLAG, False):
            handler = existing
            break
    if handler is None:
        handler = logging.StreamHandler(stream)
        handler.setFormatter(logging.Formatter(_LOG_FORMAT))
        setattr(handler, _LOG_HANDLER_FLAG, True)
        root.addHandler(handler)
    handler.setLevel(level)
    root.setLevel(level)
    return root
