"""SLO health monitoring: burn-rate windows and alert rules for repro.serve.

Turns one :class:`~repro.serve.request.ServingReport` into a deterministic
alert timeline, the way an SRE pager would have seen the run:

* **Multi-window burn rate** (Google SRE style): the error budget is
  ``1 - objective.target`` of requests allowed to miss the SLO; the burn
  rate is the budget-normalized bad fraction over a rolling sim-time window.
  A :class:`BurnRatePolicy` pages only when *both* a fast window (is it
  happening right now?) and a slow window (has it been happening long enough
  to matter?) exceed the threshold — a one-batch blip cannot page, and a
  sustained breach cannot hide behind a momentary recovery.
* **Threshold rules**: rolling shed rate, degradation-ladder level at each
  dispatch, and (when a fault signal is supplied) the
  :meth:`~repro.faults.injector.FaultInjector.fault_pressure` reading.

Everything is a pure function of the report (plus the optional fault
signal): same input, byte-identical :class:`HealthReport`.  All timestamps
are simulated seconds; the monitor never reads wall time.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError

#: Alert rule names (stable identifiers in the exported timeline).
RULE_BURN_RATE = "burn-rate"
RULE_SHED_RATE = "shed-rate"
RULE_DEGRADE_LEVEL = "degrade-level"
RULE_FAULT_PRESSURE = "fault-pressure"


@dataclass(frozen=True)
class SloObjective:
    """The availability target the burn rate is measured against."""

    target: float = 0.999  # fraction of requests that must meet the deadline

    def __post_init__(self) -> None:
        if not 0.0 < self.target < 1.0:
            raise ConfigurationError(
                f"SLO target must be in (0, 1), got {self.target}"
            )

    @property
    def budget(self) -> float:
        """The error budget: the fraction of requests allowed to fail."""
        return 1.0 - self.target


@dataclass(frozen=True)
class BurnRatePolicy:
    """Fast/slow multi-window burn-rate paging rule.

    ``None`` windows default to multiples of the run's SLO: the fast window
    to ``5 x slo`` (a few batch rounds) and the slow window to ``25 x slo``.
    """

    threshold: float = 2.0  # paging burn rate (1.0 = exactly on budget)
    fast_window_s: Optional[float] = None
    slow_window_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.threshold <= 0:
            raise ConfigurationError("burn-rate threshold must be positive")
        for window in (self.fast_window_s, self.slow_window_s):
            if window is not None and window <= 0:
                raise ConfigurationError("burn-rate windows must be positive")

    def resolve_windows(self, slo: float) -> Tuple[float, float]:
        fast = self.fast_window_s if self.fast_window_s is not None else 5 * slo
        slow = self.slow_window_s if self.slow_window_s is not None else 25 * slo
        if fast > slow:
            raise ConfigurationError(
                f"fast window {fast} exceeds slow window {slow}"
            )
        return fast, slow


@dataclass(frozen=True)
class AlertEvent:
    """One state transition of one rule (``fire`` or ``resolve``)."""

    time: float
    rule: str
    kind: str  # "fire" | "resolve"
    value: float  # the reading that caused the transition
    detail: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "time_s": self.time,
            "rule": self.rule,
            "kind": self.kind,
            "value": self.value,
            "detail": self.detail,
        }


@dataclass
class HealthReport:
    """The deterministic outcome of one health evaluation."""

    objective: SloObjective
    slo: float
    alerts: List[AlertEvent] = field(default_factory=list)
    peak_burn_fast: float = 0.0
    peak_burn_slow: float = 0.0
    peak_shed_rate: float = 0.0
    peak_degrade_level: int = 0
    peak_fault_pressure: float = 0.0

    @property
    def fired(self) -> bool:
        return any(a.kind == "fire" for a in self.alerts)

    def fired_rules(self) -> List[str]:
        seen: List[str] = []
        for alert in self.alerts:
            if alert.kind == "fire" and alert.rule not in seen:
                seen.append(alert.rule)
        return seen

    def pages(self, rule: str) -> List[AlertEvent]:
        return [a for a in self.alerts if a.rule == rule]

    def to_dict(self) -> Dict[str, object]:
        return {
            "objective_target": self.objective.target,
            "slo_s": self.slo,
            "fired": self.fired,
            "fired_rules": self.fired_rules(),
            "alerts": [a.to_dict() for a in self.alerts],
            "peak_burn_fast": self.peak_burn_fast,
            "peak_burn_slow": self.peak_burn_slow,
            "peak_shed_rate": self.peak_shed_rate,
            "peak_degrade_level": self.peak_degrade_level,
            "peak_fault_pressure": self.peak_fault_pressure,
        }

    def render(self) -> str:
        lines = [
            f"SLO health: target {self.objective.target:.3%}, "
            f"peak burn fast/slow {self.peak_burn_fast:.1f}x/"
            f"{self.peak_burn_slow:.1f}x, peak shed {self.peak_shed_rate:.1%}, "
            f"peak degrade level {self.peak_degrade_level}, "
            f"peak fault pressure {self.peak_fault_pressure:.2f}"
        ]
        if not self.alerts:
            lines.append("alerts: none (healthy)")
        for alert in self.alerts:
            lines.append(
                f"  {alert.time * 1e3:10.3f} ms  {alert.kind:<7} "
                f"{alert.rule}  value={alert.value:.3f}  {alert.detail}"
            )
        return "\n".join(lines)


class _RuleTracker:
    """Turns a sampled boolean condition into fire/resolve transitions."""

    def __init__(self, rule: str) -> None:
        self.rule = rule
        self.active = False
        self.events: List[AlertEvent] = []

    def sample(
        self, time: float, breaching: bool, value: float, detail: str = ""
    ) -> None:
        if breaching and not self.active:
            self.active = True
            self.events.append(
                AlertEvent(time, self.rule, "fire", value, detail)
            )
        elif not breaching and self.active:
            self.active = False
            self.events.append(
                AlertEvent(time, self.rule, "resolve", value, detail)
            )


class _RollingCounts:
    """Bad/total event counts over a rolling window, via sorted timestamps."""

    def __init__(
        self, times: Sequence[float], bad_times: Sequence[float]
    ) -> None:
        self.times = list(times)  # sorted
        self.bad_times = list(bad_times)  # sorted

    def window(self, now: float, width: float) -> Tuple[int, int]:
        """(bad, total) event counts in ``(now - width, now]``."""
        lo = now - width
        total = bisect_right(self.times, now) - bisect_right(self.times, lo)
        bad = bisect_right(self.bad_times, now) - bisect_right(
            self.bad_times, lo
        )
        return bad, total

    def bad_fraction(self, now: float, width: float) -> float:
        bad, total = self.window(now, width)
        return bad / total if total else 0.0


def evaluate_serving_health(
    report: Any,
    objective: SloObjective = SloObjective(),
    burn_policy: BurnRatePolicy = BurnRatePolicy(),
    shed_rate_threshold: float = 0.05,
    degrade_level_threshold: int = 3,
    fault_signal: Optional[Callable[[float], float]] = None,
    fault_pressure_threshold: float = 0.5,
) -> HealthReport:
    """Evaluate one serving run's health into an alert timeline.

    ``report`` is duck-typed on :class:`~repro.serve.request.ServingReport`
    (``slo``, ``completed``, ``shed``, ``batches``).  Rules are sampled at
    every request outcome (completion or shed, in time order) and at every
    batch dispatch, so the timeline is a deterministic function of the run.
    """
    if shed_rate_threshold <= 0 or shed_rate_threshold > 1:
        raise ConfigurationError("shed_rate_threshold must be in (0, 1]")
    if degrade_level_threshold < 0:
        raise ConfigurationError("degrade_level_threshold cannot be negative")
    slo = float(report.slo)
    fast_window, slow_window = burn_policy.resolve_windows(slo)

    # Outcome stream: every request leaves the layer exactly once, either at
    # its completion (good iff within deadline) or when it is shed (bad).
    outcomes: List[Tuple[float, bool, int]] = []
    for record in report.completed:
        outcomes.append(
            (float(record.completion), bool(record.within_deadline),
             int(record.request.request_id))
        )
    for record in report.shed:
        outcomes.append(
            (float(record.shed_time), False, int(record.request.request_id))
        )
    outcomes.sort(key=lambda item: (item[0], item[2]))

    times = [t for t, _good, _rid in outcomes]
    bad_times = [t for t, good, _rid in outcomes if not good]
    shed_times = sorted(float(r.shed_time) for r in report.shed)
    slo_counts = _RollingCounts(times, bad_times)
    shed_counts = _RollingCounts(times, shed_times)

    result = HealthReport(objective=objective, slo=slo)
    burn = _RuleTracker(RULE_BURN_RATE)
    shed_rule = _RuleTracker(RULE_SHED_RATE)
    fault_rule = _RuleTracker(RULE_FAULT_PRESSURE)
    budget = objective.budget
    for now, _good, _rid in outcomes:
        fast_burn = slo_counts.bad_fraction(now, fast_window) / budget
        slow_burn = slo_counts.bad_fraction(now, slow_window) / budget
        result.peak_burn_fast = max(result.peak_burn_fast, fast_burn)
        result.peak_burn_slow = max(result.peak_burn_slow, slow_burn)
        breaching = (
            fast_burn >= burn_policy.threshold
            and slow_burn >= burn_policy.threshold
        )
        burn.sample(
            now,
            breaching,
            min(fast_burn, slow_burn),
            f"fast {fast_burn:.1f}x / slow {slow_burn:.1f}x over "
            f"budget {budget:.2%}",
        )
        shed_fraction = shed_counts.bad_fraction(now, slow_window)
        result.peak_shed_rate = max(result.peak_shed_rate, shed_fraction)
        shed_rule.sample(
            now,
            shed_fraction >= shed_rate_threshold,
            shed_fraction,
            f"rolling shed rate over {slow_window * 1e3:.1f} ms window",
        )
        if fault_signal is not None:
            pressure = float(fault_signal(now))
            result.peak_fault_pressure = max(
                result.peak_fault_pressure, pressure
            )
            fault_rule.sample(
                now,
                pressure >= fault_pressure_threshold,
                pressure,
                "device fault pressure",
            )

    degrade_rule = _RuleTracker(RULE_DEGRADE_LEVEL)
    for batch in sorted(report.batches, key=lambda b: (b.start, b.replica)):
        level = int(batch.degrade_level)
        result.peak_degrade_level = max(result.peak_degrade_level, level)
        degrade_rule.sample(
            float(batch.start),
            level >= degrade_level_threshold,
            float(level),
            f"ladder level at dispatch (threshold {degrade_level_threshold})",
        )

    alerts = burn.events + shed_rule.events + degrade_rule.events
    alerts += fault_rule.events
    alerts.sort(key=lambda a: (a.time, a.rule, a.kind))
    result.alerts = alerts
    return result


def burn_rate_series(
    report: Any,
    window_s: float,
    objective: SloObjective = SloObjective(),
) -> List[Tuple[float, float]]:
    """(time, burn rate) samples at each request outcome — for plotting.

    A convenience view over the same rolling computation
    :func:`evaluate_serving_health` uses; deterministic for a given report.
    """
    if window_s <= 0:
        raise ConfigurationError("window must be positive")
    outcomes: List[Tuple[float, bool, int]] = []
    for record in report.completed:
        outcomes.append(
            (float(record.completion), bool(record.within_deadline),
             int(record.request.request_id))
        )
    for record in report.shed:
        outcomes.append(
            (float(record.shed_time), False, int(record.request.request_id))
        )
    outcomes.sort(key=lambda item: (item[0], item[2]))
    counts = _RollingCounts(
        [t for t, _g, _r in outcomes],
        [t for t, g, _r in outcomes if not g],
    )
    budget = objective.budget
    return [
        (now, counts.bad_fraction(now, window_s) / budget)
        for now, _good, _rid in outcomes
    ]
