"""Exporters: JSON-lines, Prometheus text exposition, Chrome trace JSON.

Three serializations of the same telemetry so a run can be consumed by
whatever tool is at hand:

* :func:`to_jsonl` — one JSON object per line (spans then metric samples);
  trivially greppable and diffable;
* :func:`to_prometheus_text` — the text exposition format (``# HELP`` /
  ``# TYPE`` / samples, histograms with ``_bucket``/``_sum``/``_count``)
  scrapable by any Prometheus-compatible collector;
* :func:`to_chrome_trace` — the Chrome trace-event JSON object format
  (``{"traceEvents": [...]}``) that opens directly in Perfetto or
  ``chrome://tracing``: complete events (``ph: "X"``) carry ``ts``/``dur``
  in microseconds, instant events are ``ph: "i"``, and metadata events name
  one "thread" per tracer track so tile pipelines and per-channel flash
  timelines render side by side.

Spans prefer the simulated clock when present (the whole point of a device
simulator's timeline) and fall back to wall time for host-side spans.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, TextIO, Union

from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .tracing import SpanRecord, Tracer, spans_from_command_trace

PathOrFile = Union[str, TextIO]


def _write(target: PathOrFile, text: str) -> None:
    if isinstance(target, str):
        with open(target, "w", encoding="utf-8") as fh:
            fh.write(text)
    else:
        target.write(text)


# --- JSON lines -------------------------------------------------------------------
def to_jsonl(
    tracer: Optional[Tracer] = None,
    registry: Optional[MetricsRegistry] = None,
) -> str:
    """Spans and metric samples, one JSON object per line."""
    lines: List[str] = []
    if tracer is not None:
        for span in tracer.spans:
            lines.append(json.dumps(span.to_dict(), sort_keys=True))
    if registry is not None:
        for instrument in registry.instruments():
            for labels, value in instrument.samples():
                lines.append(
                    json.dumps(
                        {
                            "type": "metric",
                            "metric": instrument.name,
                            "kind": instrument.kind,
                            "labels": dict(labels),
                            "value": value,
                        },
                        sort_keys=True,
                    )
                )
    return "\n".join(lines) + ("\n" if lines else "")


def write_jsonl(
    target: PathOrFile,
    tracer: Optional[Tracer] = None,
    registry: Optional[MetricsRegistry] = None,
) -> None:
    _write(target, to_jsonl(tracer, registry))


def read_jsonl_spans(source: PathOrFile) -> List[SpanRecord]:
    """Parse span records back out of a JSONL export or streamed span file.

    The inverse of the span half of :func:`to_jsonl` (and of
    :class:`repro.obs.streaming.JsonlSpanWriter` output): metric lines and
    blanks are skipped, span/instant lines become :class:`SpanRecord` rows in
    file order.
    """
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as fh:
            text = fh.read()
    else:
        text = source.read()
    spans: List[SpanRecord] = []
    for line in text.splitlines():
        if not line.strip():
            continue
        data = json.loads(line)
        if data.get("type") == "metric":
            continue
        spans.append(SpanRecord.from_dict(data))
    return spans


# --- Prometheus text exposition ---------------------------------------------------
def _escape_label_value(value: str) -> str:
    """Escape a label value per the exposition format: ``\\``, ``"``, newline."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_labels(labels: Iterable, extra: Optional[Dict[str, str]] = None) -> str:
    pairs = [f'{k}="{_escape_label_value(str(v))}"' for k, v in labels]
    for k, v in (extra or {}).items():
        pairs.append(f'{k}="{_escape_label_value(str(v))}"')
    return "{" + ",".join(pairs) + "}" if pairs else ""


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def to_prometheus_text(registry: MetricsRegistry) -> str:
    """Serialize a registry in the Prometheus text exposition format."""
    out: List[str] = []
    for instrument in registry.instruments():
        out.append(f"# HELP {instrument.name} {instrument.help}")
        out.append(f"# TYPE {instrument.name} {instrument.kind}")
        if isinstance(instrument, (Counter, Gauge)):
            samples = instrument.samples()
            if not samples and isinstance(instrument, Counter):
                samples = [((), 0.0)]  # pre-registered, never incremented
            for labels, value in samples:
                out.append(
                    f"{instrument.name}{_format_labels(labels)}"
                    f" {_format_value(value)}"
                )
        elif isinstance(instrument, Histogram):
            states = instrument.states()
            if not states:
                out.append(f"{instrument.name}_sum 0")
                out.append(f"{instrument.name}_count 0")
            for labels, state in states:
                cumulative = 0
                for i, bound in enumerate(instrument.buckets):
                    cumulative += state.bucket_counts[i]
                    le = _format_labels(labels, {"le": _format_value(bound)})
                    out.append(f"{instrument.name}_bucket{le} {cumulative}")
                cumulative += state.bucket_counts[-1]
                le = _format_labels(labels, {"le": "+Inf"})
                out.append(f"{instrument.name}_bucket{le} {cumulative}")
                base = _format_labels(labels)
                out.append(f"{instrument.name}_sum{base} {repr(state.sum)}")
                out.append(f"{instrument.name}_count{base} {state.count}")
    return "\n".join(out) + ("\n" if out else "")


def write_prometheus(target: PathOrFile, registry: MetricsRegistry) -> None:
    _write(target, to_prometheus_text(registry))


# --- Chrome trace-event JSON ------------------------------------------------------
_SIM_SCALE = 1e6  # seconds -> microseconds (the trace-event ``ts`` unit)


def _span_clock(span: SpanRecord) -> Optional[tuple]:
    """(ts, dur) in microseconds, preferring the simulated clock."""
    if span.sim_start is not None and span.sim_end is not None:
        return span.sim_start * _SIM_SCALE, span.sim_duration * _SIM_SCALE
    if span.wall_start is not None:
        duration = span.wall_duration if span.wall_end is not None else 0.0
        return span.wall_start * _SIM_SCALE, duration * _SIM_SCALE
    return None


def spans_to_chrome_events(
    spans: Iterable[SpanRecord], pid: int = 1
) -> List[Dict[str, object]]:
    """Convert span records to Chrome trace-event dicts (the shared path)."""
    events: List[Dict[str, object]] = []
    tids: Dict[str, int] = {}
    for span in spans:
        tid = tids.get(span.track)
        if tid is None:
            tid = len(tids) + 1
            tids[span.track] = tid
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": span.track},
                }
            )
        clock = _span_clock(span)
        if clock is None:
            continue
        ts, dur = clock
        args = dict(span.attrs)
        if span.wall_duration is not None and span.sim_start is not None:
            args["wall_duration_s"] = span.wall_duration
        event: Dict[str, object] = {
            "name": span.name,
            "ph": "i" if span.kind == "instant" else "X",
            "ts": ts,
            "pid": pid,
            "tid": tid,
            "args": args,
        }
        if span.kind == "instant":
            event["s"] = "t"  # thread-scoped instant
        else:
            event["dur"] = dur
        events.append(event)
    return events


def to_chrome_trace(
    tracer: Tracer,
    pid: int = 1,
    display_unit: str = "ns",
) -> str:
    """The tracer's spans as a Chrome trace-event JSON document."""
    document = {
        "traceEvents": spans_to_chrome_events(tracer.spans, pid=pid),
        "displayTimeUnit": display_unit,
        "otherData": {"clock": "simulated seconds x 1e6 (fallback: wall)"},
    }
    return json.dumps(document, sort_keys=True)


def write_chrome_trace(target: PathOrFile, tracer: Tracer) -> None:
    _write(target, to_chrome_trace(tracer))


def command_trace_events(events: Iterable, pid: int = 1) -> List[Dict[str, object]]:
    """Chrome trace events for a flash command log.

    The one conversion path shared by :meth:`repro.ssd.trace.CommandTrace.
    to_chrome_events` and :meth:`repro.obs.tracing.Tracer.add_command_trace`:
    TraceEvents become :class:`SpanRecord` rows first, then the standard
    span-to-Chrome serializer runs.
    """
    return spans_to_chrome_events(spans_from_command_trace(events), pid=pid)
