"""Critical-path profiler: attribution analyses over recorded telemetry.

PR 1 made the stack *record* spans; this module makes it *explain* them.
Every analysis here is a pure function over :class:`~repro.obs.tracing.
SpanRecord` lists (and optionally the metrics registry) — nothing feeds back
into the timing models, so profiling a run cannot perturb it and a run with
profiling disabled is bit-identical to an uninstrumented one.

The paper's headline claims become computed numbers:

* **Where did the time go** — each pipeline tile's window is swept and every
  instant is attributed to the resource that *binds* it (the phase span that
  ends last among those covering the instant: exactly the ``max()`` composition
  the §4.5 overlap model uses), so per-resource attributed seconds sum to
  end-to-end latency by construction.  The binding chain is the tile's
  critical path.
* **Transfer interference (§4.3)** — the overlap of the 4-bit screener-weight
  stream (DRAM under the heterogeneous layout, flash otherwise) with the
  32-bit candidate fetches, plus the interference-penalty seconds the
  homogeneous layout pays on shared channels.
* **Per-channel balance (§5)** — busy seconds per ``flash/ch<N>`` track and
  the max/mean imbalance ratio that learned interleaving is supposed to
  flatten.
* **Queueing vs. service vs. transfer** — per-command phase attributes
  recorded by :class:`~repro.ssd.trace.TracingController` aggregate into a
  per-channel decomposition of where flash commands waited versus worked.

:func:`profile_trace` runs all of the above and returns a
:class:`ProfileReport` whose :meth:`ProfileReport.to_dict` contains only
simulated-clock quantities — two runs with the same seed serialize to
byte-identical JSON.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..errors import WorkloadError
from .tracing import (
    CLUSTER_TRACK,
    FLASH_TRACK_PREFIX,
    PIPELINE_TRACK,
    SERVE_TRACK,
    SpanRecord,
)

# Resource names used by the attribution model.  ``stall`` absorbs any part
# of a window no recorded span covers (pipeline bubbles).
RESOURCE_DRAM = "dram"
RESOURCE_FLASH = "flash"
RESOURCE_INT4 = "int4-acc"
RESOURCE_FP32 = "fp32-acc"
RESOURCE_HOST = "host"
RESOURCE_STALL = "stall"

#: Fallback mapping from phase-span name suffix to resource, used for traces
#: recorded before spans carried an explicit ``resource`` attribute.
_PHASE_RESOURCE_FALLBACK: Dict[str, str] = {
    "int4_fetch": RESOURCE_DRAM,
    "int4_compute": RESOURCE_INT4,
    "fp32_fetch": RESOURCE_FLASH,
    "fp32_compute": RESOURCE_FP32,
}

Interval = Tuple[float, float]


def merge_intervals(intervals: Iterable[Interval]) -> List[Interval]:
    """Union of possibly-overlapping ``(start, end)`` intervals, sorted."""
    ordered = sorted((s, e) for s, e in intervals if e > s)
    merged: List[List[float]] = []
    for start, end in ordered:
        if merged and start <= merged[-1][1]:
            merged[-1][1] = max(merged[-1][1], end)
        else:
            merged.append([start, end])
    return [(s, e) for s, e in merged]


def total_length(intervals: Iterable[Interval]) -> float:
    """Summed length of a *merged* interval list."""
    return sum(e - s for s, e in intervals)


def overlap_length(a: Sequence[Interval], b: Sequence[Interval]) -> float:
    """Length of the intersection of two merged interval lists."""
    total = 0.0
    i = j = 0
    while i < len(a) and j < len(b):
        start = max(a[i][0], b[j][0])
        end = min(a[i][1], b[j][1])
        if end > start:
            total += end - start
        if a[i][1] <= b[j][1]:
            i += 1
        else:
            j += 1
    return total


def span_resource(span: SpanRecord) -> Optional[str]:
    """The resource a span occupies, from its attrs or its name suffix."""
    explicit = span.attrs.get("resource")
    if isinstance(explicit, str):
        return explicit
    if span.track.startswith(FLASH_TRACK_PREFIX):
        return RESOURCE_FLASH
    suffix = span.name.rsplit("/", 1)[-1]
    return _PHASE_RESOURCE_FALLBACK.get(suffix)


@dataclass(frozen=True)
class CriticalSegment:
    """One stretch of a tile's critical path bound by a single span."""

    span: str
    resource: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> Dict[str, object]:
        return {
            "span": self.span,
            "resource": self.resource,
            "start_s": self.start,
            "end_s": self.end,
            "duration_s": self.duration,
        }


@dataclass(frozen=True)
class TileAttribution:
    """One tile's window decomposed into per-resource critical-path time."""

    name: str
    start: float
    end: float
    seconds: Mapping[str, float]
    critical_path: Tuple[CriticalSegment, ...]

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "start_s": self.start,
            "end_s": self.end,
            "duration_s": self.duration,
            "seconds": {k: self.seconds[k] for k in sorted(self.seconds)},
            "critical_path": [seg.to_dict() for seg in self.critical_path],
        }


@dataclass
class ResourceProfile:
    """Aggregate view of one resource over the profiled window."""

    resource: str
    busy_s: float = 0.0  # union of busy intervals (can overlap across tiles)
    attributed_s: float = 0.0  # critical-path seconds charged to this resource
    queue_s: float = 0.0
    service_s: float = 0.0
    transfer_s: float = 0.0
    utilization: float = 0.0  # busy_s / profiled window
    idle_gaps: int = 0
    idle_s: float = 0.0
    longest_gap_s: float = 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "resource": self.resource,
            "busy_s": self.busy_s,
            "attributed_s": self.attributed_s,
            "queue_s": self.queue_s,
            "service_s": self.service_s,
            "transfer_s": self.transfer_s,
            "utilization": self.utilization,
            "idle_gaps": self.idle_gaps,
            "idle_s": self.idle_s,
            "longest_gap_s": self.longest_gap_s,
        }


@dataclass(frozen=True)
class ChannelBalance:
    """Per-channel busy time and the §5 imbalance ratio (max / mean)."""

    busy_s: Mapping[int, float]
    pages: Mapping[int, int]

    @property
    def max_busy_s(self) -> float:
        return max(self.busy_s.values(), default=0.0)

    @property
    def mean_busy_s(self) -> float:
        if not self.busy_s:
            return 0.0
        return sum(self.busy_s.values()) / len(self.busy_s)

    @property
    def imbalance(self) -> float:
        """max/mean channel busy time; 1.0 is perfectly balanced."""
        mean = self.mean_busy_s
        return self.max_busy_s / mean if mean > 0 else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "busy_s": {str(c): self.busy_s[c] for c in sorted(self.busy_s)},
            "pages": {str(c): self.pages[c] for c in sorted(self.pages)},
            "max_busy_s": self.max_busy_s,
            "mean_busy_s": self.mean_busy_s,
            "imbalance": self.imbalance,
        }


@dataclass(frozen=True)
class InterferenceStats:
    """§4.3 transfer interference between the INT4 and FP32 weight streams."""

    int4_stream_s: float  # merged INT4 weight-fetch time
    fp32_fetch_s: float  # merged FP32 candidate-fetch time
    overlap_s: float  # time both streams were moving data at once
    penalty_s: float  # extra fetch seconds the homogeneous layout paid

    @property
    def overlap_fraction(self) -> float:
        """Fraction of FP32 fetch time spent concurrent with the INT4 stream."""
        if self.fp32_fetch_s <= 0:
            return 0.0
        return self.overlap_s / self.fp32_fetch_s

    def to_dict(self) -> Dict[str, object]:
        return {
            "int4_stream_s": self.int4_stream_s,
            "fp32_fetch_s": self.fp32_fetch_s,
            "overlap_s": self.overlap_s,
            "overlap_fraction": self.overlap_fraction,
            "penalty_s": self.penalty_s,
        }


@dataclass
class ProfileReport:
    """Everything :func:`profile_trace` computed about one recorded run."""

    window_start: float
    window_end: float
    tiles: List[TileAttribution] = field(default_factory=list)
    overhead: Dict[str, float] = field(default_factory=dict)
    resources: Dict[str, ResourceProfile] = field(default_factory=dict)
    channel_balance: ChannelBalance = field(
        default_factory=lambda: ChannelBalance(busy_s={}, pages={})
    )
    interference: InterferenceStats = field(
        default_factory=lambda: InterferenceStats(0.0, 0.0, 0.0, 0.0)
    )

    @property
    def end_to_end_s(self) -> float:
        """The profiled window: first pipeline span start to last end."""
        return self.window_end - self.window_start

    @property
    def attributed_s(self) -> Dict[str, float]:
        """Total critical-path seconds per resource (tiles + overhead)."""
        totals: Dict[str, float] = {}
        for tile in self.tiles:
            for resource, seconds in tile.seconds.items():
                totals[resource] = totals.get(resource, 0.0) + seconds
        for resource, seconds in self.overhead.items():
            totals[resource] = totals.get(resource, 0.0) + seconds
        return totals

    @property
    def attributed_total_s(self) -> float:
        return sum(self.attributed_s.values())

    @property
    def attribution_error(self) -> float:
        """|attributed - end-to-end| / end-to-end (the <= 1% contract)."""
        window = self.end_to_end_s
        if window <= 0:
            return 0.0
        return abs(self.attributed_total_s - window) / window

    def critical_path(self) -> List[CriticalSegment]:
        """The whole run's binding chain, tile by tile."""
        segments: List[CriticalSegment] = []
        for tile in self.tiles:
            segments.extend(tile.critical_path)
        return segments

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe, simulated-clock-only form (byte-stable per seed)."""
        attributed = self.attributed_s
        return {
            "window_start_s": self.window_start,
            "window_end_s": self.window_end,
            "end_to_end_s": self.end_to_end_s,
            "attributed_s": {k: attributed[k] for k in sorted(attributed)},
            "attributed_total_s": self.attributed_total_s,
            "attribution_error": self.attribution_error,
            "overhead_s": {k: self.overhead[k] for k in sorted(self.overhead)},
            "tiles": [tile.to_dict() for tile in self.tiles],
            "resources": {
                name: self.resources[name].to_dict()
                for name in sorted(self.resources)
            },
            "channel_balance": self.channel_balance.to_dict(),
            "interference": self.interference.to_dict(),
        }

    def render(self) -> str:
        """Human-readable attribution tables."""
        from ..analysis.reporting import render_table

        attributed = self.attributed_s
        window = self.end_to_end_s
        rows = []
        for name in sorted(
            attributed, key=lambda n: (-attributed[n], n)
        ):
            profile = self.resources.get(name)
            rows.append([
                name,
                f"{attributed[name] * 1e6:,.1f}",
                f"{attributed[name] / window:.1%}" if window > 0 else "-",
                f"{profile.utilization:.1%}" if profile else "-",
                f"{profile.queue_s * 1e6:,.1f}" if profile else "-",
                f"{profile.transfer_s * 1e6:,.1f}" if profile else "-",
            ])
        out = [
            render_table(
                ["resource", "critical-path us", "share", "utilization",
                 "queue us", "transfer us"],
                rows,
                title=f"Attribution: {window * 1e6:,.1f} us end-to-end, "
                      f"{len(self.tiles)} tiles "
                      f"(error {self.attribution_error:.3%})",
            )
        ]
        balance = self.channel_balance
        if balance.busy_s:
            out.append(
                f"channel balance: max/mean busy {balance.imbalance:.3f}x "
                f"over {len(balance.busy_s)} channels"
            )
        interference = self.interference
        out.append(
            f"transfer interference: {interference.overlap_fraction:.1%} of "
            f"FP32 fetch time overlaps the INT4 stream "
            f"({interference.overlap_s * 1e6:,.1f} us; homogeneous penalty "
            f"{interference.penalty_s * 1e6:,.1f} us)"
        )
        return "\n".join(out)


def _sweep_window(
    start: float,
    end: float,
    children: Sequence[Tuple[SpanRecord, str]],
) -> Tuple[Dict[str, float], List[CriticalSegment]]:
    """Attribute every instant of ``[start, end]`` to its binding span.

    Within each elementary segment the binding span is the covering span that
    ends last (ties broken by name): under the pipeline's ``max()`` overlap
    composition that is the span still running when the others have finished,
    i.e. the one on the critical path.  Instants no span covers are charged to
    ``stall``, so the returned seconds always sum to ``end - start`` exactly.
    """
    boundaries = {start, end}
    for span, _resource in children:
        if span.sim_start is None or span.sim_end is None:
            continue
        boundaries.add(min(max(span.sim_start, start), end))
        boundaries.add(min(max(span.sim_end, start), end))
    ordered = sorted(boundaries)
    seconds: Dict[str, float] = {}
    path: List[CriticalSegment] = []
    for seg_start, seg_end in zip(ordered, ordered[1:]):
        if seg_end <= seg_start:
            continue
        covering = [
            (span, resource)
            for span, resource in children
            if span.sim_start is not None
            and span.sim_end is not None
            and span.sim_start <= seg_start
            and span.sim_end >= seg_end
        ]
        if covering:
            span, resource = max(
                covering,
                key=lambda item: (item[0].sim_end or 0.0, item[0].name),
            )
            name = span.name
        else:
            name, resource = RESOURCE_STALL, RESOURCE_STALL
        seconds[resource] = seconds.get(resource, 0.0) + (seg_end - seg_start)
        if path and path[-1].span == name and path[-1].end == seg_start:
            last = path[-1]
            path[-1] = CriticalSegment(
                span=last.span, resource=last.resource,
                start=last.start, end=seg_end,
            )
        else:
            path.append(
                CriticalSegment(
                    span=name, resource=resource, start=seg_start, end=seg_end
                )
            )
    return seconds, path


def _idle_gaps(
    busy: Sequence[Interval], window_start: float, window_end: float
) -> Tuple[int, float, float]:
    """(gap count, idle seconds, longest gap) within the profiled window."""
    gaps: List[float] = []
    cursor = window_start
    for start, end in busy:
        if start > cursor:
            gaps.append(start - cursor)
        cursor = max(cursor, end)
    if window_end > cursor:
        gaps.append(window_end - cursor)
    if not gaps:
        return 0, 0.0, 0.0
    return len(gaps), sum(gaps), max(gaps)


def channel_balance_from_spans(
    spans: Sequence[SpanRecord],
    registry: Optional[Any] = None,
) -> ChannelBalance:
    """Per-channel busy seconds from ``flash/ch<N>`` tracks (+ page counts).

    ``registry`` optionally supplies the ``ecssd_pages_fetched_total``
    counter so the balance report carries page counts alongside busy time.
    """
    per_channel: Dict[int, List[Interval]] = {}
    for span in spans:
        if not span.track.startswith(FLASH_TRACK_PREFIX):
            continue
        if span.sim_start is None or span.sim_end is None:
            continue
        try:
            channel = int(span.track[len(FLASH_TRACK_PREFIX):])
        except ValueError:
            continue
        per_channel.setdefault(channel, []).append(
            (span.sim_start, span.sim_end)
        )
    busy = {
        channel: total_length(merge_intervals(intervals))
        for channel, intervals in per_channel.items()
    }
    pages: Dict[int, int] = {}
    counter = registry.get("ecssd_pages_fetched_total") if registry else None
    if counter is not None:
        for labels, value in counter.samples():
            label_map = dict(labels)
            if "channel" in label_map:
                pages[int(label_map["channel"])] = int(value)
    return ChannelBalance(busy_s=busy, pages=pages)


def transfer_interference(spans: Sequence[SpanRecord]) -> InterferenceStats:
    """§4.3 stats: INT4-stream / FP32-fetch concurrency and penalty paid.

    The INT4 stream intervals are the ``*/int4_fetch`` phase spans (DRAM
    traffic under the heterogeneous layout); the FP32 intervals are the
    ``*/fp32_fetch`` spans.  ``penalty_s`` sums each tile's
    ``interference_penalty_s`` attribute (recorded only when the homogeneous
    layout actually paid it).
    """
    int4_intervals: List[Interval] = []
    fp32_intervals: List[Interval] = []
    penalty = 0.0
    for span in spans:
        if span.sim_start is None or span.sim_end is None:
            continue
        suffix = span.name.rsplit("/", 1)[-1]
        if suffix == "int4_fetch":
            int4_intervals.append((span.sim_start, span.sim_end))
        elif suffix == "fp32_fetch":
            fp32_intervals.append((span.sim_start, span.sim_end))
        extra = span.attrs.get("interference_penalty_s")
        if isinstance(extra, (int, float)):
            penalty += float(extra)
    int4_merged = merge_intervals(int4_intervals)
    fp32_merged = merge_intervals(fp32_intervals)
    return InterferenceStats(
        int4_stream_s=total_length(int4_merged),
        fp32_fetch_s=total_length(fp32_merged),
        overlap_s=overlap_length(int4_merged, fp32_merged),
        penalty_s=penalty,
    )


def _overhead_attribution(overhead_span: SpanRecord) -> Dict[str, float]:
    """Charge the run_overhead span's components to their resources."""
    attrs = overhead_span.attrs
    sense = float(attrs.get("sense_fill", 0.0) or 0.0)
    fill = float(attrs.get("pipeline_fill", 0.0) or 0.0)
    host = float(attrs.get("host_time", 0.0) or 0.0)
    fill_resource = attrs.get("fill_resource")
    if not isinstance(fill_resource, str):
        fill_resource = RESOURCE_INT4
    out: Dict[str, float] = {}
    if sense > 0:
        out[RESOURCE_FLASH] = out.get(RESOURCE_FLASH, 0.0) + sense
    if fill > 0:
        out[fill_resource] = out.get(fill_resource, 0.0) + fill
    if host > 0:
        out[RESOURCE_HOST] = out.get(RESOURCE_HOST, 0.0) + host
    duration = overhead_span.sim_duration or 0.0
    remainder = duration - (sense + fill + host)
    if remainder > 0:
        out[RESOURCE_STALL] = out.get(RESOURCE_STALL, 0.0) + remainder
    return out


def profile_trace(
    spans: Sequence[SpanRecord],
    registry: Optional[Any] = None,
) -> Union[ProfileReport, "FleetProfileReport"]:
    """Decompose a recorded run into the :class:`ProfileReport` analyses.

    Raises :class:`~repro.errors.WorkloadError` when the trace carries no
    sim-clocked pipeline spans (nothing to attribute).
    """
    pipeline_spans = [
        s for s in spans
        if s.track == PIPELINE_TRACK
        and s.kind == "span"
        and s.sim_start is not None
        and s.sim_end is not None
    ]
    tile_spans = [
        s for s in pipeline_spans
        if "/" not in s.name and s.name.startswith("tile")
    ]
    if not tile_spans:
        # Fleet runs record batch spans on the cluster/serve tracks instead
        # of pipeline tiles — profile those rather than coming back empty.
        if any(s.track in (CLUSTER_TRACK, SERVE_TRACK) for s in spans):
            return profile_fleet_trace(spans)
        raise WorkloadError(
            "profile_trace needs sim-clocked pipeline tile spans; "
            "run with tracing enabled first"
        )
    starts = [s.sim_start for s in pipeline_spans if s.sim_start is not None]
    ends = [s.sim_end for s in pipeline_spans if s.sim_end is not None]
    window_start = min(starts)
    window_end = max(ends)

    # Index phase spans by their owning tile ("tile3/fp32_fetch" -> "tile3").
    children: Dict[str, List[Tuple[SpanRecord, str]]] = {}
    for span in spans:
        if "/" not in span.name or span.kind != "span":
            continue
        if span.sim_start is None or span.sim_end is None:
            continue
        owner = span.name.split("/", 1)[0]
        resource = span_resource(span)
        if resource is None:
            continue
        children.setdefault(owner, []).append((span, resource))

    tiles: List[TileAttribution] = []
    for tile in sorted(tile_spans, key=lambda s: (s.sim_start or 0.0, s.name)):
        assert tile.sim_start is not None and tile.sim_end is not None
        seconds, path = _sweep_window(
            tile.sim_start, tile.sim_end, children.get(tile.name, [])
        )
        tiles.append(
            TileAttribution(
                name=tile.name,
                start=tile.sim_start,
                end=tile.sim_end,
                seconds=seconds,
                critical_path=tuple(path),
            )
        )

    overhead: Dict[str, float] = {}
    for span in pipeline_spans:
        if span.name == "run_overhead":
            for resource, seconds in _overhead_attribution(span).items():
                overhead[resource] = overhead.get(resource, 0.0) + seconds

    # Per-resource busy intervals across every track, clamped to the
    # profiled window (flash replay timelines can run past the last tile).
    busy_intervals: Dict[str, List[Interval]] = {}
    for span in spans:
        if span.kind != "span" or span.sim_start is None or span.sim_end is None:
            continue
        resource = span_resource(span)
        if resource is None:
            continue
        start = max(span.sim_start, window_start)
        end = min(span.sim_end, window_end)
        if end > start:
            busy_intervals.setdefault(resource, []).append((start, end))
    window = window_end - window_start
    resources: Dict[str, ResourceProfile] = {}
    for resource, intervals in busy_intervals.items():
        merged = merge_intervals(intervals)
        busy = total_length(merged)
        gaps, idle, longest = _idle_gaps(merged, window_start, window_end)
        resources[resource] = ResourceProfile(
            resource=resource,
            busy_s=busy,
            utilization=busy / window if window > 0 else 0.0,
            idle_gaps=gaps,
            idle_s=idle,
            longest_gap_s=longest,
        )

    # Queue / service / transfer decomposition from per-command phase attrs.
    for span in spans:
        if not span.track.startswith(FLASH_TRACK_PREFIX):
            continue
        resource = resources.get(RESOURCE_FLASH)
        if resource is None:
            resource = ResourceProfile(resource=RESOURCE_FLASH)
            resources[RESOURCE_FLASH] = resource
        resource.queue_s += float(span.attrs.get("queue_s", 0.0) or 0.0)
        resource.service_s += float(span.attrs.get("service_s", 0.0) or 0.0)
        resource.transfer_s += float(span.attrs.get("transfer_s", 0.0) or 0.0)

    attributed: Dict[str, float] = {}
    for tile in tiles:
        for resource, seconds in tile.seconds.items():
            attributed[resource] = attributed.get(resource, 0.0) + seconds
    for resource, seconds in overhead.items():
        attributed[resource] = attributed.get(resource, 0.0) + seconds
    for resource, seconds in attributed.items():
        profile = resources.get(resource)
        if profile is None:
            profile = ResourceProfile(resource=resource)
            resources[resource] = profile
        profile.attributed_s = seconds

    return ProfileReport(
        window_start=window_start,
        window_end=window_end,
        tiles=tiles,
        overhead=overhead,
        resources=resources,
        channel_balance=channel_balance_from_spans(spans, registry),
        interference=transfer_interference(spans),
    )


# ---------------------------------------------------------------------------
# Fleet (cluster/serve) span profiling
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FleetProfileReport:
    """Critical-path view of a fleet run's batch spans.

    Built from ``CLUSTER_TRACK`` (or ``SERVE_TRACK``) ``batchN`` spans — the
    per-batch dispatch-to-merge windows the simulators record — rather than
    pipeline tile spans, so ``repro profile`` has something to say about a
    fleet run instead of raising.  ``slowest`` is the fleet's critical-batch
    table: the batches that bound tail latency, longest first.
    """

    track: str
    window_start: float
    window_end: float
    batches: int
    requests: int
    duration_quantiles: Dict[str, float]
    nodes: List[Dict[str, object]]
    levels: Dict[int, int]
    slowest: List[Dict[str, object]]

    @property
    def end_to_end_s(self) -> float:
        return self.window_end - self.window_start

    def to_dict(self) -> Dict[str, object]:
        return {
            "track": self.track,
            "window_start_s": self.window_start,
            "window_end_s": self.window_end,
            "end_to_end_s": self.end_to_end_s,
            "batches": self.batches,
            "requests": self.requests,
            "duration_quantiles_s": dict(self.duration_quantiles),
            "nodes": [dict(row) for row in self.nodes],
            "levels": {str(k): v for k, v in sorted(self.levels.items())},
            "slowest": [dict(row) for row in self.slowest],
        }

    def render(self) -> str:
        from ..analysis.reporting import render_table

        q = self.duration_quantiles
        lines = [
            f"fleet profile over {self.batches} batch spans "
            f"({self.requests} requests, {self.end_to_end_s:.3f}s window, "
            f"track '{self.track}')",
            "batch duration p50/p95/p99/p99.9: "
            f"{q['p50'] * 1e3:.3f} / {q['p95'] * 1e3:.3f} / "
            f"{q['p99'] * 1e3:.3f} / {q['p99.9'] * 1e3:.3f} ms",
        ]
        node_rows = [
            [
                str(row["node"]),
                str(row["batches"]),
                str(row["requests"]),
                f"{float(row['busy_s']) * 1e3:.3f}",
                f"{float(row['utilization']) * 100:.1f}%",
            ]
            for row in self.nodes
        ]
        lines.append(render_table(
            ["node", "batches", "requests", "busy ms", "util"], node_rows,
        ))
        slow_rows = [
            [
                str(row["name"]),
                f"{float(row['duration_s']) * 1e3:.3f}",
                str(row["size"]),
                str(row["level"]),
                str(row["node"]),
            ]
            for row in self.slowest
        ]
        lines.append(render_table(
            ["critical batch", "duration ms", "size", "level", "node"],
            slow_rows,
        ))
        return "\n".join(lines)


def profile_fleet_trace(
    spans: Sequence[SpanRecord], top_k: int = 8
) -> FleetProfileReport:
    """Aggregate a fleet run's batch spans into a critical-path table.

    Accepts the span stream of a ``repro cluster`` (``CLUSTER_TRACK``) or
    ``repro serve`` (``SERVE_TRACK``) run; raises
    :class:`~repro.errors.WorkloadError` when neither track has sim-clocked
    spans.
    """
    import numpy as np

    track = CLUSTER_TRACK
    fleet = [
        s for s in spans
        if s.track == CLUSTER_TRACK and s.kind == "span"
        and s.sim_start is not None and s.sim_end is not None
    ]
    if not fleet:
        track = SERVE_TRACK
        fleet = [
            s for s in spans
            if s.track == SERVE_TRACK and s.kind == "span"
            and s.sim_start is not None and s.sim_end is not None
        ]
    if not fleet:
        raise WorkloadError(
            "profile_fleet_trace needs sim-clocked cluster or serve batch "
            "spans; run `repro cluster`/`repro serve` with tracing enabled"
        )
    window_start = min(s.sim_start for s in fleet if s.sim_start is not None)
    window_end = max(s.sim_end for s in fleet if s.sim_end is not None)
    window = window_end - window_start

    def owner(span: SpanRecord) -> int:
        for key in ("service_node", "replica"):
            value = span.attrs.get(key)
            if isinstance(value, int):
                return value
        return -1

    durations = np.asarray(
        [s.sim_end - s.sim_start for s in fleet
         if s.sim_end is not None and s.sim_start is not None],
        dtype=np.float64,
    )
    levels: Dict[int, int] = {}
    requests = 0
    by_node: Dict[int, List[SpanRecord]] = {}
    for span in fleet:
        size = span.attrs.get("size")
        requests += size if isinstance(size, int) else 1
        level = span.attrs.get("level")
        if isinstance(level, int):
            levels[level] = levels.get(level, 0) + 1
        by_node.setdefault(owner(span), []).append(span)

    nodes: List[Dict[str, object]] = []
    for node in sorted(by_node):
        rows = by_node[node]
        busy = total_length(merge_intervals(
            (s.sim_start, s.sim_end) for s in rows
            if s.sim_start is not None and s.sim_end is not None
        ))
        node_requests = sum(
            s.attrs.get("size") if isinstance(s.attrs.get("size"), int) else 1
            for s in rows
        )
        nodes.append({
            "node": node,
            "batches": len(rows),
            "requests": node_requests,
            "busy_s": busy,
            "utilization": busy / window if window > 0 else 0.0,
        })

    # The fleet's critical-batch table: longest spans first, name tie-break.
    ranked = sorted(
        fleet,
        key=lambda s: (
            -(s.sim_end - s.sim_start)
            if s.sim_end is not None and s.sim_start is not None else 0.0,
            s.name,
        ),
    )[:top_k]
    slowest = [
        {
            "name": s.name,
            "start_s": s.sim_start,
            "duration_s": (
                s.sim_end - s.sim_start
                if s.sim_end is not None and s.sim_start is not None else 0.0
            ),
            "size": s.attrs.get("size", 1),
            "level": s.attrs.get("level", 0),
            "node": owner(s),
        }
        for s in ranked
    ]
    return FleetProfileReport(
        track=track,
        window_start=window_start,
        window_end=window_end,
        batches=len(fleet),
        requests=requests,
        duration_quantiles={
            "p50": float(np.percentile(durations, 50.0)),
            "p95": float(np.percentile(durations, 95.0)),
            "p99": float(np.percentile(durations, 99.0)),
            "p99.9": float(np.percentile(durations, 99.9)),
        },
        nodes=nodes,
        levels=levels,
        slowest=slowest,
    )
