"""Streaming telemetry: bounded-memory span capture for long runs.

The in-memory :class:`~repro.obs.tracing.Tracer` holds every span, which
caps trace size far below the million-request serving runs the roadmap
targets.  This module is the O(1)-per-span alternative: attach a
:class:`StreamingSpanSink` to a tracer and every finished span flows
through three optional bounded stages instead of a list —

* :class:`JsonlSpanWriter` — incremental JSON-lines file output with
  flush-on-threshold.  Line format is exactly the in-memory exporter's
  (:func:`repro.obs.export.to_jsonl`), so a streamed file is byte-identical
  to an after-the-fact export of the same spans;
* :class:`SpanReservoir` — deterministic seeded reservoir sampling
  (Algorithm R over an explicit ``default_rng((seed, salt))`` stream).  The
  kept sample is a pure function of (seed, span order), and is returned in
  arrival order, so sampled traces are stable run to run;
* :class:`WindowedAggregator` — per-sim-time-window histogram aggregation
  with fold-down: once more than ``max_windows`` windows are live, the
  oldest folds into a cumulative state via exact histogram merge
  (:meth:`repro.obs.metrics._HistogramState.merge`).  For a time-ordered
  span stream the whole-run aggregate is byte-identical to the unbounded
  computation, while memory stays O(windows), not O(events).
"""

from __future__ import annotations

import json
import math
import os
from typing import Dict, List, Optional, Sequence, TextIO, Tuple

import numpy as np

from ..errors import ConfigurationError, ObservabilityError
from .metrics import (
    DEFAULT_BUCKETS,
    _HistogramState,
    percentile_from_state,
)
from .tracing import SpanRecord

#: Salt mixed into the reservoir's RNG stream so a shared scenario seed
#: never correlates with workload-generation draws.
_RESERVOIR_SALT = 0x5A11


class JsonlSpanWriter:
    """Incremental JSONL span writer with flush-on-threshold.

    Buffers serialized lines and writes them out every ``flush_threshold``
    spans (and on :meth:`close`), so a crash loses at most one buffer.  The
    produced file is byte-identical to ``to_jsonl(tracer)`` over the same
    spans with no registry attached.
    """

    def __init__(self, path: str, flush_threshold: int = 512) -> None:
        if flush_threshold < 1:
            raise ConfigurationError("flush_threshold must be >= 1")
        self.path = path
        self.flush_threshold = flush_threshold
        self.lines_written = 0
        self.flushes = 0
        self._buffer: List[str] = []
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._handle: Optional[TextIO] = open(path, "w", encoding="utf-8")

    @property
    def closed(self) -> bool:
        return self._handle is None

    def write(self, span: SpanRecord) -> None:
        if self._handle is None:
            raise ObservabilityError(
                f"JSONL span writer for {self.path} is closed"
            )
        self._buffer.append(json.dumps(span.to_dict(), sort_keys=True))
        if len(self._buffer) >= self.flush_threshold:
            self.flush()

    def flush(self) -> None:
        if not self._buffer or self._handle is None:
            return
        self._handle.write("\n".join(self._buffer) + "\n")
        self._handle.flush()
        self.lines_written += len(self._buffer)
        self.flushes += 1
        self._buffer.clear()

    def close(self) -> None:
        if self._handle is None:
            return
        self.flush()
        self._handle.close()
        self._handle = None


class SpanReservoir:
    """Seeded, order-stable reservoir sample of a span stream (Algorithm R).

    Holds at most ``capacity`` spans.  Replacement draws come from an
    explicit ``default_rng((seed, salt))`` stream, so for a given seed the
    kept sample depends only on the order and length of the span stream —
    two identical runs keep identical samples.  :meth:`sample` returns the
    kept spans sorted by arrival index (order-stable).
    """

    def __init__(self, capacity: int, seed: int = 0) -> None:
        if capacity < 1:
            raise ConfigurationError("reservoir capacity must be >= 1")
        self.capacity = capacity
        self.seed = seed
        self.offered = 0
        self._rng = np.random.default_rng((seed, _RESERVOIR_SALT))
        self._items: List[Tuple[int, SpanRecord]] = []

    def offer(self, span: SpanRecord) -> None:
        index = self.offered
        self.offered += 1
        if len(self._items) < self.capacity:
            self._items.append((index, span))
            return
        slot = int(self._rng.integers(0, index + 1))
        if slot < self.capacity:
            self._items[slot] = (index, span)

    def __len__(self) -> int:
        return len(self._items)

    def sample(self) -> List[SpanRecord]:
        """Kept spans in arrival order."""
        return [span for _, span in sorted(self._items, key=lambda kv: kv[0])]

    def sample_indices(self) -> List[int]:
        """Arrival indices of the kept spans (ascending)."""
        return sorted(index for index, _ in self._items)


class WindowedAggregator:
    """Online per-window aggregation of span sim-durations, O(windows).

    Observations land in the window ``floor(sim_time / window_s)``.  When
    more than ``max_windows`` windows are live the oldest folds into a
    cumulative merged state; :meth:`to_dict` merges (folded + live windows,
    ascending) into the whole-run aggregate.  Because fold-down and the
    final merge both combine windows in ascending index order, a bounded
    aggregator's output is byte-identical to an unbounded one's for any
    time-ordered stream — the equality the streaming tests pin.
    """

    def __init__(
        self,
        window_s: float,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        max_windows: int = 64,
    ) -> None:
        if window_s <= 0:
            raise ConfigurationError("window_s must be positive")
        if max_windows < 1:
            raise ConfigurationError("max_windows must be >= 1")
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ConfigurationError("buckets must be sorted and unique")
        self.window_s = window_s
        self.buckets = bounds
        self.max_windows = max_windows
        self.events = 0
        self.windows_seen = 0
        self._windows: Dict[int, _HistogramState] = {}
        self._folded: Optional[_HistogramState] = None
        self._folded_through = -1  # highest window index already folded

    @property
    def live_windows(self) -> int:
        return len(self._windows)

    def observe_span(self, span: SpanRecord) -> None:
        """Fold one span's simulated duration in (instants are skipped)."""
        if span.kind != "span":
            return
        if span.sim_start is None or span.sim_end is None:
            return
        self.observe(span.sim_start, span.sim_end - span.sim_start)

    def observe(self, sim_time: float, value: float) -> None:
        self.events += 1
        index = int(math.floor(sim_time / self.window_s))
        if index <= self._folded_through and self._folded is not None:
            # Straggler older than the fold horizon: merge it directly so
            # nothing is dropped (ordering vs the folded prefix is lost,
            # which only matters to float-sum associativity).
            straggler = _HistogramState(len(self.buckets))
            straggler.observe(value, self.buckets)
            self._folded.merge(straggler)
            return
        state = self._windows.get(index)
        if state is None:
            state = _HistogramState(len(self.buckets))
            self._windows[index] = state
            self.windows_seen += 1
        state.observe(value, self.buckets)
        while len(self._windows) > self.max_windows:
            self._fold_oldest()

    def _fold_oldest(self) -> None:
        index = min(self._windows)
        state = self._windows.pop(index)
        if self._folded is None:
            self._folded = state
        else:
            self._folded.merge(state)
        self._folded_through = max(self._folded_through, index)

    def merged(self) -> _HistogramState:
        """One state covering everything observed (folded + live windows)."""
        total = _HistogramState(len(self.buckets))
        if self._folded is not None:
            total.merge(self._folded)
        for index in sorted(self._windows):
            total.merge(self._windows[index])
        return total

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe whole-run aggregate (stable under fold-down)."""
        state = self.merged()
        empty = state.count == 0
        return {
            "window_s": self.window_s,
            "windows": self.windows_seen,
            "events": self.events,
            "count": state.count,
            "sum": state.sum,
            "min": None if empty else state.min,
            "max": None if empty else state.max,
            "p50": None if empty else percentile_from_state(
                self.buckets, state, 50.0
            ),
            "p95": None if empty else percentile_from_state(
                self.buckets, state, 95.0
            ),
            "p99": None if empty else percentile_from_state(
                self.buckets, state, 99.0
            ),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)


class StreamingSpanSink:
    """The composite sink a :class:`~repro.obs.tracing.Tracer` streams to.

    Wires any combination of the three stages: a JSONL file (``path``), a
    seeded reservoir sample (``reservoir``), and windowed aggregation
    (``window_s``).  All stages see every span; memory held is
    O(flush buffer + reservoir + windows) regardless of run length.
    """

    def __init__(
        self,
        path: Optional[str] = None,
        flush_threshold: int = 512,
        reservoir: Optional[int] = None,
        seed: int = 0,
        window_s: Optional[float] = None,
        max_windows: int = 64,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        if path is None and reservoir is None and window_s is None:
            raise ConfigurationError(
                "StreamingSpanSink needs at least one stage: a JSONL path, "
                "a reservoir size, or an aggregation window"
            )
        self.writer = (
            JsonlSpanWriter(path, flush_threshold) if path is not None else None
        )
        self.reservoir = (
            SpanReservoir(reservoir, seed=seed) if reservoir is not None else None
        )
        self.aggregator = (
            WindowedAggregator(window_s, buckets=buckets, max_windows=max_windows)
            if window_s is not None
            else None
        )
        self.emitted = 0

    @property
    def path(self) -> Optional[str]:
        return self.writer.path if self.writer is not None else None

    def emit(self, span: SpanRecord) -> None:
        self.emitted += 1
        if self.writer is not None:
            self.writer.write(span)
        if self.reservoir is not None:
            self.reservoir.offer(span)
        if self.aggregator is not None:
            self.aggregator.observe_span(span)

    def sample(self) -> List[SpanRecord]:
        """The reservoir's kept spans (empty when sampling is disabled)."""
        return self.reservoir.sample() if self.reservoir is not None else []

    def aggregate(self) -> Optional[Dict[str, object]]:
        """The windowed aggregate (``None`` when aggregation is disabled)."""
        return self.aggregator.to_dict() if self.aggregator is not None else None

    def flush(self) -> None:
        if self.writer is not None:
            self.writer.flush()

    def close(self) -> None:
        if self.writer is not None:
            self.writer.close()
