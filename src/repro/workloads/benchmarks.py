"""Table 3 benchmark registry: models, datasets, and matrix geometry.

Sizes follow §6.1: the projection scale is 0.25 (shrunk dimension K = D/4),
the screener weights are 4-bit, and the classifier weights are FP32.  For
XMLCNN-S100M that yields the paper's quoted 12.8 GB / 400 GB matrices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..errors import WorkloadError

PROJECTION_SCALE = 0.25
DEFAULT_CANDIDATE_RATIO = 0.10


@dataclass(frozen=True)
class BenchmarkSpec:
    """One Table 3 row plus derived storage geometry."""

    name: str
    model: str
    dataset: str
    num_labels: int
    hidden_dim: int
    candidate_ratio: float = DEFAULT_CANDIDATE_RATIO
    batch_size: int = 8

    def __post_init__(self) -> None:
        if self.num_labels <= 0 or self.hidden_dim <= 0:
            raise WorkloadError(f"{self.name}: dimensions must be positive")
        if not (0 < self.candidate_ratio <= 1):
            raise WorkloadError(f"{self.name}: candidate ratio out of range")

    @property
    def shrunk_dim(self) -> int:
        """Projected hidden dimension K = D * 0.25 (§6.1)."""
        return max(1, round(self.hidden_dim * PROJECTION_SCALE))

    @property
    def fp32_vector_bytes(self) -> int:
        """One FP32 (or CFP32 — same footprint) weight vector."""
        return 4 * self.hidden_dim

    @property
    def int4_vector_bytes(self) -> int:
        """One packed INT4 screener vector (2 codes per byte)."""
        return (self.shrunk_dim + 1) // 2

    @property
    def fp32_matrix_bytes(self) -> int:
        return self.num_labels * self.fp32_vector_bytes

    @property
    def int4_matrix_bytes(self) -> int:
        return self.num_labels * self.int4_vector_bytes

    @property
    def expected_candidates(self) -> int:
        """Average candidate count per query at this spec's ratio."""
        return max(1, round(self.num_labels * self.candidate_ratio))

    def fp32_flops_full(self, batch: int = 1) -> int:
        """FLOPs of full (un-screened) classification per batch."""
        return 2 * batch * self.num_labels * self.hidden_dim

    def fp32_flops_screened(self, batch: int = 1) -> int:
        """FLOPs of candidate-only classification per batch."""
        return 2 * batch * self.expected_candidates * self.hidden_dim

    def int4_ops(self, batch: int = 1) -> int:
        """INT4 MAC operations of the screening stage per batch."""
        return 2 * batch * self.num_labels * self.shrunk_dim

    def scaled(self, num_labels: int, suffix: str) -> "BenchmarkSpec":
        """A copy with a different label count (scalability sweeps)."""
        return BenchmarkSpec(
            name=f"{self.name}-{suffix}",
            model=self.model,
            dataset=self.dataset,
            num_labels=num_labels,
            hidden_dim=self.hidden_dim,
            candidate_ratio=self.candidate_ratio,
            batch_size=self.batch_size,
        )


_SPECS: List[BenchmarkSpec] = [
    BenchmarkSpec("GNMT-E32K", "GNMT", "WMT16", 32_317, 1024),
    BenchmarkSpec("LSTM-W33K", "LSTM", "Wikitext-2", 33_278, 1500),
    BenchmarkSpec("Transformer-W268K", "Transformer", "Wikitext-103", 267_744, 512),
    BenchmarkSpec("XMLCNN-A670K", "XMLCNN", "Amazon-670k", 670_091, 512),
    BenchmarkSpec("XMLCNN-S10M", "XMLCNN", "S10M", 10_000_000, 1024),
    BenchmarkSpec("XMLCNN-S50M", "XMLCNN", "S50M", 50_000_000, 1024),
    BenchmarkSpec("XMLCNN-S100M", "XMLCNN", "S100M", 100_000_000, 1024),
]

BENCHMARKS: Dict[str, BenchmarkSpec] = {spec.name: spec for spec in _SPECS}

# The three large-scale benchmarks Fig. 13 compares architectures on.
LARGE_SCALE = ("XMLCNN-S10M", "XMLCNN-S50M", "XMLCNN-S100M")
# The four benchmarks Fig. 12 compares interleaving strategies on.
INTERLEAVING_SET = ("GNMT-E32K", "LSTM-W33K", "Transformer-W268K", "XMLCNN-A670K")


def get_benchmark(name: str) -> BenchmarkSpec:
    """Look up a Table 3 benchmark by its abbreviation."""
    try:
        return BENCHMARKS[name]
    except KeyError:
        known = ", ".join(sorted(BENCHMARKS))
        raise WorkloadError(f"unknown benchmark {name!r}; known: {known}") from None


def list_benchmarks() -> List[BenchmarkSpec]:
    """All Table 3 benchmarks in publication order."""
    return list(_SPECS)
