"""Query arrival streams: load generation for latency-under-load studies.

The batching analyzer needs arrival processes, not just batch sizes.  This
module generates deterministic (seeded) arrival-time sequences:

* **Poisson** — memoryless arrivals at a target rate (the classic open-loop
  load model);
* **bursty** — a two-state modulated Poisson process (quiet/burst), the
  shape real recommendation/search traffic has;
* **closed-loop** — a fixed client population that issues the next query
  when the previous one completes.

:func:`simulate_batched_service` replays a stream against a fixed batch
policy and per-batch service time, producing per-query latency samples —
the distribution behind the batching bench's mean numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..errors import WorkloadError


def poisson_arrivals(rate: float, num_queries: int, seed: int = 0) -> np.ndarray:
    """Arrival timestamps of a Poisson process at ``rate`` queries/s."""
    if rate <= 0:
        raise WorkloadError("rate must be positive")
    if num_queries <= 0:
        raise WorkloadError("num_queries must be positive")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / rate, size=num_queries)
    return np.cumsum(gaps)


def bursty_arrivals(
    base_rate: float,
    burst_rate: float,
    num_queries: int,
    burst_fraction: float = 0.2,
    mean_phase_queries: int = 50,
    seed: int = 0,
) -> np.ndarray:
    """Two-state modulated Poisson arrivals (quiet <-> burst phases).

    ``burst_fraction`` of queries arrive during bursts at ``burst_rate``;
    the rest at ``base_rate``.  Phase lengths are geometric around
    ``mean_phase_queries``.
    """
    if base_rate <= 0 or burst_rate <= base_rate:
        raise WorkloadError("need burst_rate > base_rate > 0")
    if num_queries <= 0:
        raise WorkloadError("num_queries must be positive")
    if not (0.0 < burst_fraction < 1.0):
        raise WorkloadError("burst_fraction must be in (0, 1)")
    if mean_phase_queries <= 0:
        raise WorkloadError("mean_phase_queries must be positive")
    rng = np.random.default_rng(seed)
    gaps = np.empty(num_queries)
    produced = 0
    in_burst = False
    while produced < num_queries:
        phase_len = 1 + rng.geometric(1.0 / mean_phase_queries)
        if in_burst:
            phase_len = max(1, int(phase_len * burst_fraction / (1 - burst_fraction)))
        count = min(phase_len, num_queries - produced)
        rate = burst_rate if in_burst else base_rate
        gaps[produced : produced + count] = rng.exponential(1.0 / rate, size=count)
        produced += count
        in_burst = not in_burst
    return np.cumsum(gaps)


@dataclass(frozen=True)
class LatencySample:
    """One query's journey through the batched server."""

    arrival: float
    batch_start: float
    completion: float

    @property
    def latency(self) -> float:
        return self.completion - self.arrival

    @property
    def queue_wait(self) -> float:
        return self.batch_start - self.arrival


@dataclass
class ServiceReport:
    """Latency statistics of one replay."""

    samples: List[LatencySample]

    def latencies(self) -> np.ndarray:
        return np.array([s.latency for s in self.samples])

    @property
    def mean_latency(self) -> float:
        if not self.samples:
            raise WorkloadError(
                "service report is empty; mean latency is undefined"
            )
        return float(self.latencies().mean())

    def percentile(self, q: float) -> float:
        if not self.samples:
            raise WorkloadError(
                "service report is empty; latency percentiles are undefined"
            )
        if not 0.0 <= q <= 100.0:
            raise WorkloadError(f"percentile must be in [0, 100], got {q}")
        return float(np.percentile(self.latencies(), q))

    @property
    def throughput(self) -> float:
        if not self.samples:
            return 0.0
        span = max(s.completion for s in self.samples) - self.samples[0].arrival
        return len(self.samples) / span if span > 0 else float("inf")


def simulate_batched_service(
    arrivals: Sequence[float],
    batch_size: int,
    batch_time: float,
    max_wait: float = float("inf"),
) -> ServiceReport:
    """Replay arrivals through a batch-and-serve loop.

    The server collects up to ``batch_size`` queries (or dispatches a
    partial batch once the oldest waiter has waited ``max_wait``), then
    serves the batch in ``batch_time`` (one server; batches serialize).
    """
    if batch_size <= 0:
        raise WorkloadError("batch_size must be positive")
    if batch_time <= 0:
        raise WorkloadError("batch_time must be positive")
    arrivals = np.asarray(arrivals, dtype=np.float64)
    if arrivals.size == 0:
        raise WorkloadError("no arrivals to serve")
    samples: List[LatencySample] = []
    server_free = 0.0
    index = 0
    n = len(arrivals)
    while index < n:
        head = arrivals[index]
        # The batch closes when full, when max_wait expires for the head
        # query, or when the backlog empties.
        last = min(index + batch_size, n)
        members = list(range(index, last))
        close_time = max(head + (0 if len(members) == batch_size else 0), head)
        if len(members) == batch_size:
            close_time = arrivals[members[-1]]
        else:
            close_time = min(head + max_wait, arrivals[members[-1]])
            close_time = max(close_time, arrivals[members[-1]])
            if max_wait != float("inf"):
                # Partial dispatch: only queries arrived by the deadline ride.
                deadline = head + max_wait
                members = [i for i in members if arrivals[i] <= deadline]
                close_time = min(deadline, arrivals[members[-1]])
                close_time = max(close_time, arrivals[members[-1]])
        start = max(close_time, server_free)
        completion = start + batch_time
        server_free = completion
        for i in members:
            samples.append(
                LatencySample(
                    arrival=float(arrivals[i]),
                    batch_start=start,
                    completion=completion,
                )
            )
        index = members[-1] + 1
    return ServiceReport(samples=samples)
