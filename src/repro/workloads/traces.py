"""Scalable candidate-trace generation for tile-level timing experiments.

The huge Table 3 benchmarks (10M-100M labels) cannot be materialized as
matrices, but the timing model only needs *which labels each query selects
per tile*.  :class:`CandidateTraceGenerator` synthesizes those selections
directly from a statistical hotness model, tile by tile, with the two
properties measured on real extreme-classification label distributions:

* per-label selection probability is Zipf-skewed (head labels are selected
  by most queries, the long tail rarely);
* hot labels appear in contiguous *runs* in label-index space (labels are
  grouped by topic/frequency when models are exported), which is what makes
  uniform round-robin interleaving imbalanced per tile.

Generation is deterministic per (seed, tile index) so any tile can be
re-generated independently — experiments sample a handful of tiles from a
100M-label space and scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..errors import WorkloadError


@dataclass(frozen=True)
class LabelHotnessModel:
    """Statistical model of per-label candidate probability within tiles.

    ``zipf_exponent`` controls head-vs-tail skew; ``run_length`` is the size
    of contiguous hot label runs; ``mass_noise`` adds per-tile lognormal
    variation of total hotness (some tiles hold hot topics, others don't).
    """

    num_labels: int
    zipf_exponent: float = 1.1
    run_length: int = 32
    mass_noise: float = 0.35
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_labels <= 0:
            raise WorkloadError("num_labels must be positive")
        if self.zipf_exponent < 0:
            raise WorkloadError("zipf_exponent must be non-negative")
        if self.run_length <= 0:
            raise WorkloadError("run_length must be positive")

    def tile_weights(self, tile_index: int, tile_size: int) -> np.ndarray:
        """Unnormalized per-label hotness for one tile (deterministic).

        Labels come in runs of ``run_length``; each run draws one Zipf-style
        weight (``u^-zipf`` for uniform u), shared with jitter by its
        members, producing contiguous hot stretches.
        """
        if tile_size <= 0:
            raise WorkloadError("tile_size must be positive")
        rng = np.random.default_rng((self.seed, 0xEC55D, tile_index))
        runs = -(-tile_size // self.run_length)
        u = rng.random(runs) + 1e-9
        run_weight = u ** (-self.zipf_exponent)
        weights = np.repeat(run_weight, self.run_length)[:tile_size]
        jitter = rng.lognormal(0.0, 0.25, size=tile_size)
        tile_mass = rng.lognormal(0.0, self.mass_noise)
        return weights * jitter * tile_mass


@dataclass
class TileTrace:
    """Candidate selections of ``num_queries`` queries within one tile."""

    tile_index: int
    tile_start: int
    tile_size: int
    candidates: List[np.ndarray]  # per query, tile-local indices
    weights: np.ndarray  # the hotness weights used

    @property
    def num_queries(self) -> int:
        return len(self.candidates)

    def global_candidates(self) -> List[np.ndarray]:
        """Candidates as global label indices."""
        return [c + self.tile_start for c in self.candidates]

    def selection_frequency(self) -> np.ndarray:
        """Per-label (tile-local) fraction of queries that selected it."""
        counts = np.zeros(self.tile_size, dtype=np.int64)
        for selected in self.candidates:
            counts[selected] += 1
        return counts / max(1, self.num_queries)


class CandidateTraceGenerator:
    """Generates per-tile candidate traces from a hotness model."""

    def __init__(
        self,
        hotness: LabelHotnessModel,
        candidate_ratio: float = 0.10,
        query_noise: float = 1.0,
    ) -> None:
        if not (0 < candidate_ratio <= 1):
            raise WorkloadError("candidate_ratio must be in (0, 1]")
        if query_noise < 0:
            raise WorkloadError("query_noise must be non-negative")
        self.hotness = hotness
        self.candidate_ratio = candidate_ratio
        self.query_noise = query_noise

    def tile_trace(
        self, tile_index: int, tile_size: int, num_queries: int, seed: int = 0
    ) -> TileTrace:
        """Sample candidate sets for one tile.

        Each query draws Gumbel-perturbed log-hotness scores (``query_noise``
        scales the perturbation: 0 = every query selects the same hottest
        labels, large = near-uniform selection) and keeps the top
        ``candidate_ratio`` share of the tile.
        """
        if num_queries <= 0:
            raise WorkloadError("num_queries must be positive")
        weights = self.hotness.tile_weights(tile_index, tile_size)
        log_w = np.log(weights)
        keep = max(1, int(round(tile_size * self.candidate_ratio)))
        rng = np.random.default_rng((self.hotness.seed, 0xCA4D, tile_index, seed))
        candidates: List[np.ndarray] = []
        for _ in range(num_queries):
            gumbel = rng.gumbel(0.0, self.query_noise, size=tile_size)
            scores = log_w + gumbel
            top = np.argpartition(scores, -keep)[-keep:]
            candidates.append(np.sort(top).astype(np.int64))
        tile_start = tile_index * tile_size
        return TileTrace(
            tile_index=tile_index,
            tile_start=tile_start,
            tile_size=tile_size,
            candidates=candidates,
            weights=weights,
        )

    def predictor_abs_sums(
        self, tile_index: int, tile_size: int, fidelity: float = 0.8
    ) -> np.ndarray:
        """Synthetic INT4 |code|-sum signal correlated with true hotness.

        ``fidelity`` in [0, 1] blends the true log-hotness with independent
        noise — 1.0 is a perfect predictor, 0.0 is uninformative.  Real
        predictors sit high (big projected rows do produce big approximate
        scores) but are imperfect, hence the paper's fine-tuning step.
        """
        if not (0.0 <= fidelity <= 1.0):
            raise WorkloadError("fidelity must be in [0, 1]")
        weights = self.hotness.tile_weights(tile_index, tile_size)
        rng = np.random.default_rng((self.hotness.seed, 0xAB5, tile_index))
        log_w = np.log(weights)
        noise = rng.normal(0.0, log_w.std() + 1e-9, size=tile_size)
        blended = fidelity * log_w + (1.0 - fidelity) * noise
        # Map to a plausible |code|-sum range: positive, bounded.
        shifted = blended - blended.min()
        scale = shifted.max() if shifted.max() > 0 else 1.0
        return 1.0 + 6.0 * shifted / scale  # in [1, 7] "average |code|" units
