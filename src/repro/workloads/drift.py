"""Temporal hotness drift: what makes the interleaving *adaptive* (§5.3).

The learned placement is computed at deploy time from training-set candidate
frequencies.  Production query distributions drift — new topics get hot,
old ones cool — and a placement tuned for yesterday's hotness gradually
loses its balance.  The framework's answer is periodic re-fine-tuning plus
re-interleaving (the FTL makes moving a vector a logical-address rewrite).

:class:`DriftingHotnessModel` interpolates per-label hotness between the
deploy-time distribution and an independently drawn future one; the drift
study (`benchmarks/test_ablations.py`, `examples/scale_out_and_drift.py`)
measures how channel balance decays with drift and how much re-tuning
recovers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import WorkloadError
from .traces import CandidateTraceGenerator, LabelHotnessModel


@dataclass(frozen=True)
class DriftingHotnessModel:
    """Hotness that morphs from a base distribution toward a target one.

    ``drift`` in [0, 1]: 0 reproduces the base model exactly (what the
    placement was tuned for); 1 is a completely re-drawn hotness landscape.
    Interpolation happens in log-space so intermediate drifts stay
    Zipf-shaped.
    """

    base: LabelHotnessModel
    drift: float
    target_seed: int = 10_007

    def __post_init__(self) -> None:
        if not (0.0 <= self.drift <= 1.0):
            raise WorkloadError(f"drift must be in [0, 1], got {self.drift}")

    @property
    def num_labels(self) -> int:
        return self.base.num_labels

    @property
    def seed(self) -> int:
        # CandidateTraceGenerator keys its RNG streams off this; keep it a
        # deterministic non-negative 32-bit value.
        mix = (self.target_seed * 1_000_003 + round(self.drift * 1e6)) & 0x7FFFFFFF
        return (self.base.seed ^ mix) & 0x7FFFFFFF

    def tile_weights(self, tile_index: int, tile_size: int) -> np.ndarray:
        """Log-space interpolation between base and target tile hotness."""
        base_w = self.base.tile_weights(tile_index, tile_size)
        if self.drift == 0.0:
            return base_w
        target_model = LabelHotnessModel(
            num_labels=self.base.num_labels,
            zipf_exponent=self.base.zipf_exponent,
            run_length=self.base.run_length,
            mass_noise=self.base.mass_noise,
            seed=self.target_seed,
        )
        target_w = target_model.tile_weights(tile_index, tile_size)
        log_mix = (1.0 - self.drift) * np.log(base_w) + self.drift * np.log(target_w)
        return np.exp(log_mix)


def drifted_generator(
    base: LabelHotnessModel,
    drift: float,
    candidate_ratio: float = 0.10,
    query_noise: float = 0.05,
) -> CandidateTraceGenerator:
    """A trace generator whose hotness has drifted from ``base``."""
    return CandidateTraceGenerator(
        DriftingHotnessModel(base=base, drift=drift),
        candidate_ratio=candidate_ratio,
        query_noise=query_noise,
    )


def placement_balance_under_drift(
    placement,
    base: LabelHotnessModel,
    drift: float,
    tile_index: int,
    tile_size: int,
    num_queries: int = 16,
    candidate_ratio: float = 0.10,
) -> float:
    """Time-weighted channel balance of a fixed placement under drift.

    The placement was built for ``base``'s hotness; candidates now come
    from the drifted distribution.  Returns total-pages / (channels x
    total-max) over the sampled queries — 1.0 is perfect balance.
    """
    generator = drifted_generator(base, drift, candidate_ratio=candidate_ratio)
    trace = generator.tile_trace(tile_index, tile_size, num_queries=num_queries)
    total_pages = 0
    total_max = 0
    channels = placement.num_channels
    for candidates in trace.candidates:
        counts = placement.pages_per_channel(candidates)
        total_pages += int(counts.sum())
        total_max += int(counts.max())
    if total_max == 0:
        return 1.0
    return total_pages / (channels * total_max)
