"""Synthetic weights/features with the structure the architecture exploits.

Two properties matter and are planted explicitly:

* **Value locality** (§4.2): within one weight/feature vector, magnitudes
  cluster within a few powers of two, so CFP32's 7 compensation bits absorb
  almost every vector-wise alignment shift.  We draw each vector's elements
  from a shared log-magnitude envelope with small spread.
* **Label separability**: each feature belongs to one of ``num_clusters``
  planted clusters; labels are cluster-affiliated, so the exact top-k of a
  query is dominated by its cluster's labels and the screener (which
  preserves inner products approximately) retains them — reproducing the
  paper's "no accuracy drop" behaviour.  Cluster-affiliated (hot) labels are
  laid out in contiguous runs, which is what skews candidate traffic across
  channels in Figs. 8/11/12.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..errors import WorkloadError


@dataclass
class SyntheticWorkload:
    """A materialized (small-scale) workload: weights plus feature batches."""

    weights: np.ndarray  # (L, D) float32
    features: np.ndarray  # (Q, D) float32
    cluster_of_label: np.ndarray  # (L,) int64
    cluster_of_query: np.ndarray  # (Q,) int64
    seed: int = 0

    @property
    def num_labels(self) -> int:
        return self.weights.shape[0]

    @property
    def hidden_dim(self) -> int:
        return self.weights.shape[1]

    @property
    def num_queries(self) -> int:
        return self.features.shape[0]


def _magnitude_envelope(
    rng: np.random.Generator,
    rows: int,
    cols: int,
    spread: float,
    row_sigma: float = 1.0,
) -> np.ndarray:
    """Per-row log-normal magnitude envelopes with intra-row locality.

    ``spread`` controls intra-row element jitter (small keeps exponents
    clustered — the CFP32 value-locality property); ``row_sigma`` controls
    how much whole rows differ in scale (weight rows vary a lot, normalized
    activations very little).
    """
    row_scale = np.exp(rng.normal(0.0, row_sigma, size=(rows, 1)))
    element_jitter = np.exp(rng.normal(0.0, spread, size=(rows, cols)))
    return row_scale * element_jitter


def generate_weights(
    num_labels: int,
    hidden_dim: int,
    num_clusters: int = 16,
    cluster_run: int = 32,
    locality_spread: float = 0.35,
    seed: int = 0,
    cluster_of_label: Optional[np.ndarray] = None,
) -> tuple:
    """(weights, cluster_of_label): clustered weight matrix with value locality.

    Labels are grouped into contiguous runs of ``cluster_run`` labels per
    cluster (round-robin over clusters run-by-run), so that hot labels form
    runs in label space.  Each label's vector is its cluster centroid plus
    noise, scaled by a locality-preserving magnitude envelope.
    """
    if num_labels <= 0 or hidden_dim <= 0:
        raise WorkloadError("num_labels/hidden_dim must be positive")
    if num_clusters <= 0 or cluster_run <= 0:
        raise WorkloadError("num_clusters/cluster_run must be positive")
    rng = np.random.default_rng(seed)
    centroids = rng.normal(size=(num_clusters, hidden_dim)).astype(np.float32)
    centroids /= np.linalg.norm(centroids, axis=1, keepdims=True)
    if cluster_of_label is None:
        runs = -(-num_labels // cluster_run)
        run_clusters = rng.integers(0, num_clusters, size=runs)
        cluster_of_label = np.repeat(run_clusters, cluster_run)[:num_labels]
    cluster_of_label = np.asarray(cluster_of_label, dtype=np.int64)
    if cluster_of_label.shape != (num_labels,):
        raise WorkloadError("cluster_of_label must have one entry per label")

    noise = rng.normal(0.0, 1.0, size=(num_labels, hidden_dim)).astype(np.float32)
    base = centroids[cluster_of_label] + noise
    envelope = _magnitude_envelope(
        rng, num_labels, hidden_dim, locality_spread, row_sigma=0.2
    )
    weights = (base * envelope.astype(np.float32) * 0.05).astype(np.float32)
    return weights, cluster_of_label


def generate_features(
    num_queries: int,
    hidden_dim: int,
    weights: np.ndarray,
    cluster_of_label: np.ndarray,
    query_cluster_skew: float = 1.2,
    locality_spread: float = 0.25,
    seed: int = 1,
) -> tuple:
    """(features, cluster_of_query): query features aligned with label clusters.

    Each query picks a cluster (Zipf-skewed with exponent
    ``query_cluster_skew``, so some clusters are queried far more often —
    the source of persistent per-label hotness) and its feature points
    toward that cluster's mean label direction, plus locality-enveloped
    noise.
    """
    if num_queries <= 0:
        raise WorkloadError("num_queries must be positive")
    rng = np.random.default_rng(seed)
    num_clusters = int(cluster_of_label.max()) + 1
    ranks = np.arange(1, num_clusters + 1, dtype=np.float64)
    probs = ranks**-query_cluster_skew
    probs /= probs.sum()
    cluster_of_query = rng.choice(num_clusters, size=num_queries, p=probs)

    # Each query aims at one *target label* inside its cluster (real
    # classifiers have a correct label with a fat margin — that margin is
    # what lets screening keep exact predictions intact).
    weights64 = np.asarray(weights, dtype=np.float64)
    label_norms = np.linalg.norm(weights64, axis=1)
    targets = np.empty(num_queries, dtype=np.int64)
    for q, cluster in enumerate(cluster_of_query):
        members = np.flatnonzero(cluster_of_label == cluster)
        if members.size == 0:
            # Small label spaces may not realize every cluster; fall back to
            # any label and record the cluster actually targeted.
            members = np.arange(len(cluster_of_label))
        targets[q] = rng.choice(members)
        cluster_of_query[q] = cluster_of_label[targets[q]]
    target_dirs = weights64[targets] / np.maximum(
        label_norms[targets][:, None], 1e-12
    )

    noise = rng.normal(0.0, 0.3, size=(num_queries, hidden_dim))
    base = target_dirs * 3.5 + noise
    # Activations are effectively layer-normalized in real models: tiny
    # row-scale spread, so one global screening threshold fits all queries.
    envelope = _magnitude_envelope(
        rng, num_queries, hidden_dim, locality_spread, row_sigma=0.1
    )
    features = (base * envelope * 0.1).astype(np.float32)
    return features, cluster_of_query


def make_workload(
    num_labels: int,
    hidden_dim: int,
    num_queries: int,
    num_clusters: int = 16,
    cluster_run: int = 32,
    seed: int = 0,
) -> SyntheticWorkload:
    """Convenience constructor bundling weights + features + cluster maps."""
    weights, cluster_of_label = generate_weights(
        num_labels, hidden_dim, num_clusters=num_clusters,
        cluster_run=cluster_run, seed=seed,
    )
    features, cluster_of_query = generate_features(
        num_queries, hidden_dim, weights, cluster_of_label, seed=seed + 1
    )
    return SyntheticWorkload(
        weights=weights,
        features=features,
        cluster_of_label=cluster_of_label,
        cluster_of_query=cluster_of_query,
        seed=seed,
    )
