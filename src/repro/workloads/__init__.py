"""Benchmark workloads: Table 3 registry and synthetic data generation.

The paper evaluates on trained PyTorch models over public datasets; ECSSD
itself only ever sees (a) weight matrices, (b) feature vectors, and (c) the
candidate selections the screener produces.  This package synthesizes all
three with the statistical structure the architecture is sensitive to:

* per-vector *value locality* so CFP32 pre-alignment is ≥95% lossless (§4.2);
* *planted label structure* so screening retains exact top-k (no accuracy
  drop claim);
* *clustered Zipf label hotness* so candidate selections skew per channel
  the way real label distributions do (Figs. 8/11/12 depend on this).
"""

from .benchmarks import BenchmarkSpec, BENCHMARKS, get_benchmark, list_benchmarks
from .synthetic import SyntheticWorkload, generate_weights, generate_features
from .traces import LabelHotnessModel, CandidateTraceGenerator, TileTrace
from .drift import DriftingHotnessModel, drifted_generator
from .streams import poisson_arrivals, bursty_arrivals, simulate_batched_service

__all__ = [
    "BenchmarkSpec",
    "BENCHMARKS",
    "get_benchmark",
    "list_benchmarks",
    "SyntheticWorkload",
    "generate_weights",
    "generate_features",
    "LabelHotnessModel",
    "CandidateTraceGenerator",
    "TileTrace",
    "DriftingHotnessModel",
    "drifted_generator",
    "poisson_arrivals",
    "bursty_arrivals",
    "simulate_batched_service",
]
