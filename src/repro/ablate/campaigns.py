"""Built-in campaign builders: the studies this repo actually ships.

Each builder returns a plain :class:`~repro.ablate.spec.CampaignSpec`; the
CLI resolves them by name (``repro ablate run --campaign fleet-policy``)
and tests/benchmarks call them with smaller params.  Because the spec is
the identity, shrinking a param produces a *different* campaign with
different cell IDs — a tiny test campaign never collides with the shipped
one in a shared registry.

* ``components`` — the paper's component set (CFP32 MAC, heterogeneous
  layout, learned interleaving, overlap) one-factor-ablated from the full
  ECSSD champion; its report is ``BENCH_ablation.json``.
* ``fleet-policy`` — the ROADMAP fleet study: placement x steal x
  autoscale, full factorial, every cell under the same seeded fault
  campaign (node crashes + a rack partition + slow nodes).
* ``serving-policy`` — admission policy x degradation ladder on the SLO
  serving plane at 1.5x saturation.
* ``reliability`` — ECC ladder tiers x RBER scale through the fault
  matrix.
* ``smoke`` — a tiny synthetic matrix with declared effects; CI's
  determinism job runs it twice (2 workers) and asserts one campaign
  manifest and zero divergence.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Optional, Tuple

from ..errors import AblationError
from .spec import Axis, CampaignSpec


def components_campaign(
    seed: int = 7,
    queries: int = 16,
    sample_tiles: int = 6,
    benchmark: str = "GNMT-E32K",
) -> CampaignSpec:
    """The paper's component ablation (Fig. 8 territory), engine-driven."""
    return CampaignSpec(
        name="components",
        runner="pipeline",
        mode="one-factor",
        seed=seed,
        axes=(
            Axis("mac", ("cfp32", "sk-hynix", "naive"), "cfp32"),
            Axis("layout", ("heterogeneous", "homogeneous"), "heterogeneous"),
            Axis(
                "interleaving",
                ("learned", "uniform", "sequential"),
                "learned",
            ),
            Axis("overlap", ("on", "off"), "on"),
        ),
        params={
            "benchmark": benchmark,
            "queries": queries,
            "sample_tiles": sample_tiles,
            "train_queries": 200,
        },
    )


def fleet_policy_campaign(
    seed: int = 7,
    num_requests: int = 6000,
    mode: str = "factorial",
    fault_plan: str = "node-crash=2,partition=1,slow-node=2",
    sample_tiles: int = 4,
) -> CampaignSpec:
    """Placement x steal x autoscale under a shared seeded fault campaign."""
    return CampaignSpec(
        name="fleet-policy",
        runner="cluster",
        mode=mode,
        seed=seed,
        axes=(
            Axis(
                "placement",
                ("rack-spread", "locality-packed", "hotness-weighted"),
                "rack-spread",
            ),
            Axis("steal", ("newest", "oldest", "none"), "newest"),
            Axis("autoscale", ("on", "off"), "on"),
        ),
        params={
            "data_nodes": 8,
            "service_nodes": 4,
            "shards": 4,
            "replicas": 24,
            "racks": 2,
            "slots_per_node": 2,
            "slo_s": 0.05,
            "rate_multiplier": 1.0,
            "num_requests": num_requests,
            "fault_plan": fault_plan,
            "sample_tiles": sample_tiles,
        },
    )


def serving_policy_campaign(
    seed: int = 7, num_queries: int = 2000, sample_tiles: int = 4
) -> CampaignSpec:
    """Admission x degradation on the serving plane at 1.5x saturation."""
    return CampaignSpec(
        name="serving-policy",
        runner="serve",
        mode="factorial",
        seed=seed,
        axes=(
            Axis("admission", ("token-bucket", "depth"), "token-bucket"),
            Axis("degrade", ("on", "off"), "on"),
        ),
        params={
            "slo_s": 0.020,
            "shards": 2,
            "replicas": 1,
            "rate_multiplier": 1.5,
            "num_queries": num_queries,
            "sample_tiles": sample_tiles,
        },
    )


def reliability_campaign(
    seed: int = 0, num_labels: int = 2048, num_queries: int = 8
) -> CampaignSpec:
    """ECC ladder tiers x RBER scale through the fault matrix."""
    return CampaignSpec(
        name="reliability",
        runner="faults",
        mode="factorial",
        seed=seed,
        axes=(
            Axis("ecc", ("full", "no-retry", "hard-only"), "full"),
            Axis("rber", ("1", "10"), "1"),
        ),
        params={
            "num_labels": num_labels,
            "num_queries": num_queries,
            "fault_class": "rber",
        },
    )


def smoke_campaign(seed: int = 7) -> CampaignSpec:
    """Tiny synthetic matrix with declared effects (CI determinism smoke)."""
    return CampaignSpec(
        name="smoke",
        runner="synthetic",
        mode="one-factor",
        seed=seed,
        axes=(
            Axis("mac", ("cfp32", "naive"), "cfp32"),
            Axis("layout", ("hetero", "homo"), "hetero"),
            Axis("cache", ("on", "off"), "on"),
        ),
        params={
            "base_goodput": 1000.0,
            "base_p99_ms": 10.0,
            "effects": {
                "mac=naive": {"goodput": -0.45, "p99": 0.60},
                "layout=homo": {"goodput": -0.20, "p99": 0.25},
                "cache=off": {"goodput": -0.05, "p99": 0.10},
            },
        },
    )


#: Name -> zero-argument builder (defaults), for the CLI.
BUILTIN_CAMPAIGNS: Dict[str, Callable[[], CampaignSpec]] = {
    "components": components_campaign,
    "fleet-policy": fleet_policy_campaign,
    "serving-policy": serving_policy_campaign,
    "reliability": reliability_campaign,
    "smoke": smoke_campaign,
}


def builtin_campaign(
    name: str, overrides: Optional[Mapping[str, object]] = None
) -> CampaignSpec:
    """Resolve a built-in campaign, optionally overriding seed/params.

    ``overrides`` may set ``seed`` and/or any runner param.  Axes are not
    overridable — they are part of the campaign's meaning, not a knob.
    """
    builder = BUILTIN_CAMPAIGNS.get(name)
    if builder is None:
        raise AblationError(
            f"unknown campaign {name!r}; built-ins: "
            + ", ".join(sorted(BUILTIN_CAMPAIGNS))
        )
    spec = builder()
    if not overrides:
        return spec
    seed = spec.seed
    params = dict(spec.params)
    for key, value in overrides.items():
        if key == "seed":
            seed = int(value)  # type: ignore[arg-type]
        else:
            params[key] = value
    return CampaignSpec(
        name=spec.name,
        runner=spec.runner,
        mode=spec.mode,
        seed=seed,
        axes=spec.axes,
        params=params,
        challenger=spec.challenger,
    )


def campaign_names() -> Tuple[str, ...]:
    return tuple(sorted(BUILTIN_CAMPAIGNS))
