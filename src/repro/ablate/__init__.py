"""repro.ablate — automated ablation & experiment-campaign engine.

Declares component **axes**, generates deterministic **run matrices**
(one-factor / factorial / A-B) with spec-derived cell run IDs, executes
them through pluggable **runners** (pipeline, serve, faults, cluster,
synthetic) serially or across worker processes, resumes idempotently from
a :class:`~repro.obs.runs.RunRegistry`, and scores per-component
**importance** into a ranked :class:`AblationReport`.

See DESIGN.md section 14 for the architecture and the determinism
contract for parallel execution.
"""

from .campaigns import (
    BUILTIN_CAMPAIGNS,
    builtin_campaign,
    campaign_names,
    components_campaign,
    fleet_policy_campaign,
    reliability_campaign,
    serving_policy_campaign,
    smoke_campaign,
)
from .engine import (
    CAMPAIGN_WORKLOAD_KIND,
    CampaignResult,
    report_from_registry,
    run_campaign,
)
from .importance import (
    INDIFFERENCE,
    SCORING_DIRECTIONS,
    ImportanceEntry,
    MetricDelta,
    metric_direction,
    metric_harm,
    score_importance,
)
from .matrix import (
    CELL_WORKLOAD_KIND,
    Cell,
    RunMatrix,
    cell_identity,
    generate_matrix,
)
from .report import AblationReport, build_report
from .runners import get_runner, register_runner, runner_names
from .spec import CAMPAIGN_MODES, Axis, CampaignSpec, axis

__all__ = [
    "AblationReport",
    "Axis",
    "BUILTIN_CAMPAIGNS",
    "CAMPAIGN_MODES",
    "CAMPAIGN_WORKLOAD_KIND",
    "CELL_WORKLOAD_KIND",
    "CampaignResult",
    "CampaignSpec",
    "Cell",
    "INDIFFERENCE",
    "ImportanceEntry",
    "MetricDelta",
    "RunMatrix",
    "SCORING_DIRECTIONS",
    "axis",
    "build_report",
    "builtin_campaign",
    "campaign_names",
    "cell_identity",
    "components_campaign",
    "fleet_policy_campaign",
    "generate_matrix",
    "get_runner",
    "metric_direction",
    "metric_harm",
    "register_runner",
    "reliability_campaign",
    "report_from_registry",
    "run_campaign",
    "runner_names",
    "score_importance",
    "serving_policy_campaign",
    "smoke_campaign",
]
