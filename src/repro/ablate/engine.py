"""Campaign execution: serial or process-parallel, resumable, registered.

The executor owes its simplicity to two invariants the rest of the package
establishes:

1. **Cell identity is spec-derived** (:func:`repro.ablate.matrix.cell_identity`),
   so resume is a file-existence check against the
   :class:`~repro.obs.runs.RunRegistry` — a killed campaign restarts where
   it left off with *zero* re-executed cells, and two campaigns racing into
   one registry converge on identical bytes.
2. **Runners are bit-identical per seed**, so fanning cells across worker
   processes cannot change any result — only the wall-clock.  The engine
   still *assembles* deterministically: results are keyed by cell and the
   report walks cells in matrix order, so a parallel report is
   byte-identical to a serial one regardless of completion order.

Execution protocol per cell: run the runner, build the cell's
:class:`~repro.obs.runs.RunManifest` from the same (config, workload) pair
its ID was derived from (the manifest's derived ID therefore *is* the cell
ID — checked, as a guard against version drift mid-campaign), and register
it immediately — not at campaign end — so a kill loses at most the cells
in flight.  When every cell is in, a campaign-level manifest groups the
cell run IDs with one digest entry per cell (byte-comparable across
re-runs via ``repro runs diverge``).

Worker processes use the ``spawn`` start method (no inherited state) and
resolve the runner by name from the registry; campaigns using runners
registered at runtime outside :mod:`repro.ablate.runners` must run with
``workers=1`` unless the registration is importable in workers too.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from multiprocessing import get_context
from typing import Dict, List, Optional, Tuple

from ..errors import AblationError
from ..obs.digest import DigestEntry, state_digest
from ..obs.runs import RunManifest, RunRegistry
from .matrix import Cell, RunMatrix, cell_identity, generate_matrix
from .report import AblationReport, build_report
from .runners import get_runner
from .spec import CampaignSpec

#: Workload kind stamped into the campaign-level manifest identity.
CAMPAIGN_WORKLOAD_KIND = "ablation-campaign"


@dataclass
class CampaignResult:
    """A finished campaign: the matrix, per-cell metrics, ranked report."""

    spec: CampaignSpec
    matrix: RunMatrix
    results: Dict[str, Dict[str, float]]
    report: AblationReport
    resumed: List[str] = field(default_factory=list)
    executed: List[str] = field(default_factory=list)
    campaign_manifest: Optional[RunManifest] = None

    @property
    def campaign_id(self) -> Optional[str]:
        return (
            self.campaign_manifest.run_id
            if self.campaign_manifest is not None
            else None
        )


def _cell_payload(spec: CampaignSpec, cell: Cell) -> Dict[str, object]:
    return {
        "runner": spec.runner,
        "assignment": dict(cell.assignment),
        "params": dict(spec.params),
        "seed": spec.seed,
        "cell_id": cell.cell_id,
    }


def _execute_cell(payload: Dict[str, object]) -> Tuple[str, Dict[str, float]]:
    """Run one cell (this is the function worker processes invoke)."""
    runner = get_runner(str(payload["runner"]))
    assignment = payload["assignment"]
    params = payload["params"]
    assert isinstance(assignment, dict) and isinstance(params, dict)
    metrics = runner(assignment, params, int(payload["seed"]))  # type: ignore[arg-type]
    clean = {str(k): float(v) for k, v in metrics.items()}
    return str(payload["cell_id"]), clean


def _cell_manifest(
    spec: CampaignSpec, cell: Cell, metrics: Dict[str, float]
) -> RunManifest:
    """The cell's manifest; its derived run ID must equal the cell ID."""
    config, workload = cell_identity(spec, cell.assignment)
    manifest = RunManifest.build(
        label=f"campaign/{spec.name}/cell",
        seed=spec.seed,
        config=config,
        workload=workload,
        metrics=metrics,
    )
    if manifest.run_id != cell.cell_id:
        raise AblationError(
            f"cell {cell.index} of campaign {spec.name!r} derived manifest "
            f"id {manifest.run_id} but the matrix says {cell.cell_id}; the "
            f"spec or package version changed mid-campaign"
        )
    return manifest


def _load_cell_metrics(manifest: RunManifest) -> Dict[str, float]:
    return {
        str(k): float(v)  # type: ignore[arg-type]
        for k, v in manifest.metrics.items()
        if isinstance(v, (int, float)) and not isinstance(v, bool)
    }


def _campaign_manifest(
    spec: CampaignSpec,
    matrix: RunMatrix,
    results: Dict[str, Dict[str, float]],
    report: AblationReport,
) -> RunManifest:
    """The campaign-level manifest grouping every cell run ID.

    Its run ID derives from the spec and matrix alone (not from metrics),
    so a resumed completion registers under the same ID as an uninterrupted
    run — and its digest track carries one entry per cell, in matrix
    order, for ``repro runs diverge`` to replay.
    """
    digests = [
        DigestEntry(
            index=cell.index,
            tick=cell.index,
            sim_time=float(cell.index),
            digest=state_digest(
                {"cell_id": cell.cell_id, "metrics": results[cell.cell_id]}
            ),
            state={"cell_id": cell.cell_id},
        )
        for cell in matrix.cells
    ]
    manifest = RunManifest.build(
        label=f"campaign/{spec.name}",
        seed=spec.seed,
        config=spec.to_dict(),
        workload={
            "kind": CAMPAIGN_WORKLOAD_KIND,
            "cells": list(matrix.cell_ids()),
        },
        metrics={
            "cells": len(matrix.cells),
            "ranking": [
                {
                    "rank": entry.rank,
                    "axis": entry.axis,
                    "level": entry.level,
                    "harm_score": entry.harm_score,
                    "sign": entry.sign,
                }
                for entry in report.ranking
            ],
        },
        digests=digests,
    )
    return manifest


def run_campaign(
    spec: CampaignSpec,
    run_dir: Optional[str] = None,
    workers: int = 1,
    resume: bool = True,
    register_campaign: bool = True,
) -> CampaignResult:
    """Execute every cell of ``spec`` and build the ranked report.

    With ``run_dir``, completed cells are registered incrementally and
    (when ``resume``) cells whose manifests already exist are loaded
    instead of re-executed.  ``workers > 1`` fans pending cells across
    spawn-context processes; the report is byte-identical either way.
    """
    if workers < 1:
        raise AblationError("workers must be >= 1")
    matrix = generate_matrix(spec)
    registry = RunRegistry(run_dir) if run_dir else None
    results: Dict[str, Dict[str, float]] = {}
    resumed: List[str] = []
    pending: List[Cell] = []
    for cell in matrix.cells:
        manifest = None
        if registry is not None and resume:
            if os.path.exists(registry.path_for(cell.cell_id)):
                manifest = registry.get(cell.cell_id)
        if manifest is not None:
            results[cell.cell_id] = _load_cell_metrics(manifest)
            resumed.append(cell.cell_id)
        else:
            pending.append(cell)

    executed: List[str] = []

    def record(cell: Cell, metrics: Dict[str, float]) -> None:
        results[cell.cell_id] = metrics
        executed.append(cell.cell_id)
        if registry is not None:
            registry.register(_cell_manifest(spec, cell, metrics))

    if workers == 1 or len(pending) <= 1:
        for cell in pending:
            _, metrics = _execute_cell(_cell_payload(spec, cell))
            record(cell, metrics)
    else:
        by_id = {cell.cell_id: cell for cell in pending}
        context = get_context("spawn")
        with ProcessPoolExecutor(
            max_workers=min(workers, len(pending)), mp_context=context
        ) as pool:
            futures = [
                pool.submit(_execute_cell, _cell_payload(spec, cell))
                for cell in pending
            ]
            for future in as_completed(futures):
                cell_id, metrics = future.result()
                record(by_id[cell_id], metrics)
        # Completion order is scheduling noise; keep the ledger in matrix
        # order so the result object is deterministic too.
        executed.sort(key=lambda cid: by_id[cid].index if cid in by_id else -1)

    report = build_report(
        matrix,
        results,
        resumed_cells=len(resumed),
        executed_cells=len(executed),
    )
    campaign_manifest = None
    if registry is not None and register_campaign:
        campaign_manifest = _campaign_manifest(spec, matrix, results, report)
        registry.register(campaign_manifest)
    return CampaignResult(
        spec=spec,
        matrix=matrix,
        results=results,
        report=report,
        resumed=resumed,
        executed=executed,
        campaign_manifest=campaign_manifest,
    )


def report_from_registry(
    spec: CampaignSpec,
    run_dir: str,
    allow_partial: bool = False,
) -> AblationReport:
    """Rebuild the ranked report from already-registered cell manifests.

    ``repro ablate report`` uses this: no cell is executed.  Missing cells
    raise unless ``allow_partial`` (the champion is always required).
    """
    matrix = generate_matrix(spec)
    registry = RunRegistry(run_dir)
    results: Dict[str, Dict[str, float]] = {}
    for cell in matrix.cells:
        if os.path.exists(registry.path_for(cell.cell_id)):
            results[cell.cell_id] = _load_cell_metrics(
                registry.get(cell.cell_id)
            )
    return build_report(matrix, results, allow_partial=allow_partial)
