"""Declarative campaign specs: axes, champions, and matrix modes.

An ablation campaign is a pure value: a named set of :class:`Axis` objects
(each a component toggle or policy choice with a declared ``champion``
level), a matrix ``mode``, a ``runner`` name, a ``seed``, and runner
``params``.  Everything downstream — the deterministic run matrix, the
per-cell run IDs, the importance ranking — is a function of this value, so
two processes that agree on a spec agree on every cell identity without
coordinating.

Modes:

* ``one-factor`` — the champion assignment plus, per axis, one cell per
  non-champion level with every *other* axis pinned at its champion.  The
  paper's Fig. 8-style component study: each cell isolates one ablation.
* ``factorial`` — the full cross product of all axis levels (champion cell
  included).  The fleet-policy study: interactions matter.
* ``ab`` — exactly two cells, champion (A) vs ``challenger`` (B), where the
  challenger overrides any subset of axes.

Specs round-trip through JSON (``to_dict``/``from_dict``) so campaigns can
live in files and ship through the CLI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Tuple

from ..errors import ConfigurationError

#: The matrix-generation modes a spec may name.
CAMPAIGN_MODES: Tuple[str, ...] = ("one-factor", "factorial", "ab")


@dataclass(frozen=True)
class Axis:
    """One sweepable dimension: a name, its levels, and the champion level.

    Levels are strings (runners parse them); their *declared order* is part
    of the spec identity because matrix enumeration follows it.
    """

    name: str
    levels: Tuple[str, ...]
    champion: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("axis name cannot be empty")
        if len(self.levels) < 2:
            raise ConfigurationError(
                f"axis {self.name!r} needs at least two levels to ablate"
            )
        if len(set(self.levels)) != len(self.levels):
            raise ConfigurationError(
                f"axis {self.name!r} has duplicate levels: {self.levels}"
            )
        if self.champion not in self.levels:
            raise ConfigurationError(
                f"axis {self.name!r} champion {self.champion!r} is not one "
                f"of its levels {self.levels}"
            )

    @property
    def ablations(self) -> Tuple[str, ...]:
        """Non-champion levels, in declared order."""
        return tuple(lv for lv in self.levels if lv != self.champion)

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "levels": list(self.levels),
            "champion": self.champion,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Axis":
        return cls(
            name=str(data["name"]),
            levels=tuple(str(lv) for lv in list(data["levels"])),  # type: ignore[arg-type]
            champion=str(data["champion"]),
        )


@dataclass(frozen=True)
class CampaignSpec:
    """The complete, JSON-stable description of one campaign."""

    name: str
    runner: str
    axes: Tuple[Axis, ...]
    mode: str = "one-factor"
    seed: int = 0
    params: Mapping[str, object] = field(default_factory=dict)
    challenger: Optional[Mapping[str, str]] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("campaign name cannot be empty")
        if not self.runner:
            raise ConfigurationError("campaign runner cannot be empty")
        if self.mode not in CAMPAIGN_MODES:
            raise ConfigurationError(
                f"unknown campaign mode {self.mode!r}; "
                f"expected one of {CAMPAIGN_MODES}"
            )
        if not self.axes:
            raise ConfigurationError("campaign needs at least one axis")
        names = [axis.name for axis in self.axes]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate axis names: {names}")
        if self.mode == "ab":
            if not self.challenger:
                raise ConfigurationError(
                    "ab mode needs a challenger assignment"
                )
            by_name = {axis.name: axis for axis in self.axes}
            for axis_name, level in self.challenger.items():
                axis = by_name.get(axis_name)
                if axis is None:
                    raise ConfigurationError(
                        f"challenger names unknown axis {axis_name!r}"
                    )
                if level not in axis.levels:
                    raise ConfigurationError(
                        f"challenger level {level!r} is not a level of "
                        f"axis {axis_name!r}"
                    )
        elif self.challenger:
            raise ConfigurationError(
                f"challenger only applies to ab mode, not {self.mode!r}"
            )

    def axis(self, name: str) -> Axis:
        for axis in self.axes:
            if axis.name == name:
                return axis
        raise ConfigurationError(f"campaign has no axis {name!r}")

    @property
    def champion_assignment(self) -> Dict[str, str]:
        """The all-champion cell, keyed by axis name (declared order)."""
        return {axis.name: axis.champion for axis in self.axes}

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "name": self.name,
            "runner": self.runner,
            "mode": self.mode,
            "seed": self.seed,
            "axes": [axis.to_dict() for axis in self.axes],
            "params": dict(self.params),
        }
        if self.challenger is not None:
            data["challenger"] = dict(self.challenger)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "CampaignSpec":
        challenger_raw = data.get("challenger")
        return cls(
            name=str(data["name"]),
            runner=str(data["runner"]),
            mode=str(data.get("mode", "one-factor")),
            seed=int(data.get("seed", 0)),  # type: ignore[arg-type]
            axes=tuple(
                Axis.from_dict(axis)
                for axis in list(data.get("axes", []))  # type: ignore[arg-type]
            ),
            params=dict(data.get("params", {})),  # type: ignore[arg-type]
            challenger=(
                {str(k): str(v) for k, v in dict(challenger_raw).items()}  # type: ignore[arg-type]
                if challenger_raw is not None
                else None
            ),
        )


def axis(name: str, levels: Sequence[str], champion: Optional[str] = None) -> Axis:
    """Convenience constructor: champion defaults to the first level."""
    level_tuple = tuple(str(lv) for lv in levels)
    return Axis(
        name=name,
        levels=level_tuple,
        champion=str(champion) if champion is not None else level_tuple[0],
    )
