"""The ranked :class:`AblationReport`: JSON + markdown emission.

One report = one campaign's champion metrics, per-cell metric table, and
the importance ranking from :mod:`repro.ablate.importance`.  Serialization
is canonical (sorted keys, indent 2, trailing newline) so a parallel run
and a serial run of the same spec write byte-identical files — the
determinism contract the engine's tests pin.

The JSON form doubles as a perf-diff subject: ``BENCH_ablation.json`` in
``benchmarks/results/`` is this document, and CI diffs it against its
checked-in baseline through ``repro perf-diff`` like every other bench.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from ..errors import AblationError
from .importance import (
    ImportanceEntry,
    _score_entry,
    require_complete,
    score_importance,
)
from .matrix import RunMatrix


@dataclass
class AblationReport:
    """Everything a campaign produced, ready to serialize."""

    campaign: str
    runner: str
    mode: str
    seed: int
    champion_id: str
    champion_metrics: Dict[str, float]
    cells: Dict[str, Dict[str, float]]
    ranking: List[ImportanceEntry] = field(default_factory=list)
    resumed_cells: int = 0
    executed_cells: int = 0

    def entry(self, axis: str, level: str) -> ImportanceEntry:
        for candidate in self.ranking:
            if candidate.axis == axis and candidate.level == level:
                return candidate
        raise AblationError(
            f"report has no importance entry for {axis}={level}"
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "campaign": self.campaign,
            "runner": self.runner,
            "mode": self.mode,
            "seed": self.seed,
            "champion_id": self.champion_id,
            "champion_metrics": dict(self.champion_metrics),
            "cells": {k: dict(v) for k, v in self.cells.items()},
            "ranking": [entry.to_dict() for entry in self.ranking],
            "resumed_cells": self.resumed_cells,
            "executed_cells": self.executed_cells,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    def render_markdown(self) -> str:
        """The ranking as a markdown document (tables, most harmful first)."""
        lines = [
            f"# Ablation report: {self.campaign}",
            "",
            f"- runner: `{self.runner}`, mode: `{self.mode}`, "
            f"seed: {self.seed}",
            f"- cells: {len(self.cells)} "
            f"({self.executed_cells} executed, "
            f"{self.resumed_cells} resumed), champion `{self.champion_id}`",
            "",
            "## Champion metrics",
            "",
            "| metric | value |",
            "| --- | ---: |",
        ]
        for name in sorted(self.champion_metrics):
            lines.append(f"| {name} | {self.champion_metrics[name]:.6g} |")
        lines += [
            "",
            "## Component importance (most harmful ablation first)",
            "",
            "| rank | axis | champion | ablated to | harm | sign | pairs |",
            "| ---: | --- | --- | --- | ---: | ---: | ---: |",
        ]
        for entry in self.ranking:
            lines.append(
                f"| {entry.rank} | {entry.axis} | {entry.champion_level} "
                f"| {entry.level} | {entry.harm_score:+.4f} "
                f"| {entry.sign:+d} | {entry.pairs} |"
            )
        for entry in self.ranking:
            lines += [
                "",
                f"### {entry.axis}: {entry.champion_level} -> {entry.level}",
                "",
                "| metric | champion | ablated | direction | harm |",
                "| --- | ---: | ---: | --- | ---: |",
            ]
            for delta in entry.deltas:
                harm = "-" if delta.harm is None else f"{delta.harm:+.4f}"
                direction = delta.direction or "unscored"
                lines.append(
                    f"| {delta.metric} | {delta.champion:.6g} "
                    f"| {delta.ablated:.6g} | {direction} | {harm} |"
                )
        return "\n".join(lines) + "\n"


def build_report(
    matrix: RunMatrix,
    results: Mapping[str, Mapping[str, float]],
    resumed_cells: int = 0,
    executed_cells: int = 0,
    allow_partial: bool = False,
) -> AblationReport:
    """Assemble the ranked report from a matrix and its cell metrics.

    ``allow_partial`` skips cells absent from ``results`` (useful while a
    campaign is still running); the champion cell is always required,
    because every importance delta is measured against it.
    """
    spec = matrix.spec
    champion = matrix.champion
    if not allow_partial:
        require_complete(matrix, results)
    if champion.cell_id not in results:
        raise AblationError(
            f"campaign {spec.name!r} has no champion result "
            f"({champion.cell_id}); importance cannot be scored"
        )
    ranking = score_importance(matrix, results)
    if spec.mode == "ab" and not ranking:
        # Multi-axis challenger: no single-axis matched pair exists, so
        # score the challenger cell against the champion directly.
        entry = _ab_entry(matrix, results)
        if entry is not None:
            entry.rank = 1
            ranking = [entry]
    ordered_cells = {
        cell.cell_id: {k: float(v) for k, v in results[cell.cell_id].items()}
        for cell in matrix.cells
        if cell.cell_id in results
    }
    return AblationReport(
        campaign=spec.name,
        runner=spec.runner,
        mode=spec.mode,
        seed=spec.seed,
        champion_id=champion.cell_id,
        champion_metrics=dict(ordered_cells[champion.cell_id]),
        cells=ordered_cells,
        ranking=ranking,
        resumed_cells=resumed_cells,
        executed_cells=executed_cells,
    )


def _ab_entry(
    matrix: RunMatrix, results: Mapping[str, Mapping[str, float]]
) -> Optional[ImportanceEntry]:
    challenger_cells = [c for c in matrix.cells if not c.is_champion]
    if not challenger_cells:
        return None
    challenger = challenger_cells[0]
    diff = sorted(
        k
        for k, v in challenger.assignment.items()
        if matrix.champion.assignment.get(k) != v
    )
    entry = _score_entry(
        axis_name="+".join(diff),
        level="challenger",
        champion_level="champion",
        pairs=[(matrix.champion, challenger)],
        results=results,
    )
    return entry
