"""Deterministic run-matrix generation with stable per-cell run IDs.

The matrix is a pure fold over the spec: cells enumerate in declared
axis/level order (never over a hash or a set), and each cell's identity is
the same :func:`repro.obs.runs.derive_run_id` hash the run registry keys
manifests by — derived from the campaign name, runner, params, and the
cell's axis assignment at the campaign seed.  That one decision buys the
whole resume/parallelism story: any process anywhere that holds the spec
can recompute every cell ID without talking to an executor, so "has this
cell already run?" is a registry file-existence check and re-registering a
re-executed cell is a byte-identical overwrite.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from ..errors import AblationError
from ..obs.runs import derive_run_id
from .spec import CampaignSpec

#: Workload kind stamped into every cell's run identity.
CELL_WORKLOAD_KIND = "ablation-cell"


def cell_identity(
    spec: CampaignSpec, assignment: Mapping[str, str]
) -> Tuple[Dict[str, object], Dict[str, object]]:
    """The (config, workload) pair a cell's run ID — and manifest — hash.

    The executor builds each cell's :class:`~repro.obs.runs.RunManifest`
    from exactly this pair, so the manifest's derived run ID *is* the cell
    ID; the registry needs no side table mapping one to the other.
    """
    config: Dict[str, object] = {
        "campaign": spec.name,
        "runner": spec.runner,
        "params": dict(spec.params),
        "assignment": dict(assignment),
    }
    workload: Dict[str, object] = {
        "kind": CELL_WORKLOAD_KIND,
        "mode": spec.mode,
    }
    return config, workload


@dataclass(frozen=True)
class Cell:
    """One run of the campaign: an axis assignment plus its identity."""

    index: int
    cell_id: str
    assignment: Mapping[str, str]
    is_champion: bool
    #: In one-factor mode, the single axis this cell ablates (None for the
    #: champion cell and for factorial/ab cells that vary several axes).
    ablated_axis: Optional[str] = None
    #: The non-champion level ``ablated_axis`` was set to.
    ablated_level: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "cell_id": self.cell_id,
            "assignment": dict(self.assignment),
            "is_champion": self.is_champion,
            "ablated_axis": self.ablated_axis,
            "ablated_level": self.ablated_level,
        }


@dataclass(frozen=True)
class RunMatrix:
    """The full, ordered cell list for one campaign spec."""

    spec: CampaignSpec
    cells: Tuple[Cell, ...]

    @property
    def champion(self) -> Cell:
        for cell in self.cells:
            if cell.is_champion:
                return cell
        raise AblationError(
            f"campaign {self.spec.name!r} matrix has no champion cell"
        )

    def cell_ids(self) -> Tuple[str, ...]:
        return tuple(cell.cell_id for cell in self.cells)

    def to_dict(self) -> Dict[str, object]:
        return {
            "campaign": self.spec.name,
            "mode": self.spec.mode,
            "seed": self.spec.seed,
            "runner": self.spec.runner,
            "cells": [cell.to_dict() for cell in self.cells],
        }


def _make_cell(
    spec: CampaignSpec,
    index: int,
    assignment: Dict[str, str],
    champion: Mapping[str, str],
    ablated_axis: Optional[str] = None,
) -> Cell:
    config, workload = cell_identity(spec, assignment)
    return Cell(
        index=index,
        cell_id=derive_run_id(config, spec.seed, workload),
        assignment=assignment,
        is_champion=assignment == dict(champion),
        ablated_axis=ablated_axis,
        ablated_level=(
            assignment[ablated_axis] if ablated_axis is not None else None
        ),
    )


def generate_matrix(spec: CampaignSpec) -> RunMatrix:
    """Enumerate the spec's cells in deterministic declared order.

    The champion cell is always index 0; identical assignments are emitted
    once (a factorial enumeration meets the champion exactly once by
    construction, one-factor by deduplication).
    """
    champion = spec.champion_assignment
    cells: List[Cell] = [_make_cell(spec, 0, dict(champion), champion)]
    seen = {cells[0].cell_id}

    def push(assignment: Dict[str, str], ablated: Optional[str]) -> None:
        cell = _make_cell(spec, len(cells), assignment, champion, ablated)
        if cell.cell_id in seen:
            return
        seen.add(cell.cell_id)
        cells.append(cell)

    if spec.mode == "one-factor":
        for axis in spec.axes:
            for level in axis.ablations:
                assignment = dict(champion)
                assignment[axis.name] = level
                push(assignment, axis.name)
    elif spec.mode == "factorial":
        names = [axis.name for axis in spec.axes]
        for combo in itertools.product(*(axis.levels for axis in spec.axes)):
            assignment = dict(zip(names, combo))
            differing = [n for n in names if assignment[n] != champion[n]]
            push(assignment, differing[0] if len(differing) == 1 else None)
    elif spec.mode == "ab":
        assignment = dict(champion)
        assignment.update(spec.challenger or {})
        differing = [n for n in assignment if assignment[n] != champion[n]]
        if not differing:
            raise AblationError(
                f"campaign {spec.name!r}: challenger equals the champion; "
                f"nothing to A/B"
            )
        push(assignment, differing[0] if len(differing) == 1 else None)
    else:  # pragma: no cover - spec validation rejects unknown modes
        raise AblationError(f"unknown campaign mode {spec.mode!r}")
    return RunMatrix(spec=spec, cells=tuple(cells))
