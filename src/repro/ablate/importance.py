"""Component-importance scoring over a campaign's cell metrics.

The paper's claims are ratios between co-designed parts; this module turns
a matrix of cell metrics back into those ratios.  For every (axis, level)
ablation it gathers **matched pairs** — cells identical except on that one
axis — and computes a direction-adjusted relative delta per metric:

    harm(metric) = direction * (ablated - champion)
                   / max(|ablated|, |champion|, eps)

where ``direction`` is +1 for metrics where higher is worse (p99, shed
rate, outage seconds) and -1 where lower is worse (goodput, throughput,
retention), matched by the same fnmatch-style patterns perf-diff uses.
The normalization by the larger magnitude keeps every per-metric harm in
[-1, 1] even when the champion's value is zero (a champion with zero shed
rate ablated to any shedding scores the maximum +1, not infinity).

An ablation's ``harm_score`` is the mean harm over its scored metrics,
averaged over all matched pairs (one pair in one-factor mode; every
matched pair in factorial mode, so interactions average out into a main
effect).  ``sign`` is +1 when the ablation hurts (the component earns its
keep), -1 when it helps, 0 inside a small indifference band.  Entries
rank by descending harm.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import AblationError
from ..obs.perfdiff import HIGHER_IS_WORSE, LOWER_IS_WORSE
from .matrix import Cell, RunMatrix

#: First-match-wins (pattern, direction) table for scoring; metrics no
#: pattern matches are reported but excluded from harm. Mirrors the
#: perf-diff DEFAULT_TOLERANCES vocabulary.
SCORING_DIRECTIONS: Tuple[Tuple[str, str], ...] = (
    ("*p50*", HIGHER_IS_WORSE),
    ("*p95*", HIGHER_IS_WORSE),
    ("*p99*", HIGHER_IS_WORSE),
    ("*latency*", HIGHER_IS_WORSE),
    ("*time*", HIGHER_IS_WORSE),
    ("*shed*", HIGHER_IS_WORSE),
    ("*outage*", HIGHER_IS_WORSE),
    ("*parked*", HIGHER_IS_WORSE),
    ("*failed*", HIGHER_IS_WORSE),
    ("*downtime*", HIGHER_IS_WORSE),
    ("*skew*", HIGHER_IS_WORSE),
    ("*goodput*", LOWER_IS_WORSE),
    ("*throughput*", LOWER_IS_WORSE),
    ("*attainment*", LOWER_IS_WORSE),
    ("*retention*", LOWER_IS_WORSE),
    ("*utilization*", LOWER_IS_WORSE),
    ("*hit_rate*", LOWER_IS_WORSE),
)

#: |harm_score| below this counts as "no effect" (sign 0).
INDIFFERENCE = 1e-6

#: Floor for the normalizing magnitude (keeps 0-vs-0 metrics at harm 0).
_ABS_FLOOR = 1e-12


def metric_direction(name: str) -> Optional[str]:
    """The scoring direction for one metric name, or None (unscored)."""
    for pattern, direction in SCORING_DIRECTIONS:
        if fnmatchcase(name, pattern):
            return direction
    return None


def metric_harm(name: str, champion: float, ablated: float) -> Optional[float]:
    """Direction-adjusted relative delta in [-1, 1]; None when unscored."""
    direction = metric_direction(name)
    if direction is None:
        return None
    scale = max(abs(champion), abs(ablated), _ABS_FLOOR)
    delta = (ablated - champion) / scale
    return delta if direction == HIGHER_IS_WORSE else -delta


@dataclass(frozen=True)
class MetricDelta:
    """One metric's champion-vs-ablated comparison, averaged over pairs."""

    metric: str
    champion: float
    ablated: float
    direction: Optional[str]
    harm: Optional[float]

    def to_dict(self) -> Dict[str, object]:
        return {
            "metric": self.metric,
            "champion": self.champion,
            "ablated": self.ablated,
            "direction": self.direction,
            "harm": self.harm,
        }


@dataclass
class ImportanceEntry:
    """One (axis, level) ablation's scored effect vs the champion."""

    axis: str
    level: str
    champion_level: str
    pairs: int
    harm_score: float
    sign: int
    rank: int = 0
    deltas: List[MetricDelta] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {
            "axis": self.axis,
            "level": self.level,
            "champion_level": self.champion_level,
            "pairs": self.pairs,
            "harm_score": self.harm_score,
            "sign": self.sign,
            "rank": self.rank,
            "deltas": [delta.to_dict() for delta in self.deltas],
        }


def _matched_pairs(
    matrix: RunMatrix, axis_name: str, level: str
) -> List[Tuple[Cell, Cell]]:
    """(base, ablated) cell pairs identical except ``axis_name``.

    The base side holds the axis at its champion level; pairs enumerate in
    matrix order so downstream means are order-stable.
    """
    champion_level = matrix.spec.axis(axis_name).champion
    by_context: Dict[Tuple[Tuple[str, str], ...], Dict[str, Cell]] = {}
    for cell in matrix.cells:
        if cell.assignment.get(axis_name) not in (champion_level, level):
            continue
        context = tuple(
            (k, v)
            for k, v in sorted(cell.assignment.items())
            if k != axis_name
        )
        by_context.setdefault(context, {})[str(cell.assignment[axis_name])] = cell
    pairs: List[Tuple[Cell, Cell]] = []
    for cell in matrix.cells:  # matrix order, not dict order
        if cell.assignment.get(axis_name) != champion_level:
            continue
        context = tuple(
            (k, v)
            for k, v in sorted(cell.assignment.items())
            if k != axis_name
        )
        partner = by_context.get(context, {}).get(level)
        if partner is not None:
            pairs.append((cell, partner))
    return pairs


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def _score_entry(
    axis_name: str,
    level: str,
    champion_level: str,
    pairs: Sequence[Tuple[Cell, Cell]],
    results: Mapping[str, Mapping[str, float]],
) -> Optional[ImportanceEntry]:
    """Score one ablation from its matched pairs; None when no pair ran."""
    complete = [
        (base, ablated)
        for base, ablated in pairs
        if base.cell_id in results and ablated.cell_id in results
    ]
    if not complete:
        return None
    metric_names = sorted(
        {
            name
            for base, ablated in complete
            for name in (*results[base.cell_id], *results[ablated.cell_id])
        }
    )
    deltas: List[MetricDelta] = []
    harms: List[float] = []
    for name in metric_names:
        base_vals = [
            results[base.cell_id][name]
            for base, ablated in complete
            if name in results[base.cell_id] and name in results[ablated.cell_id]
        ]
        ablated_vals = [
            results[ablated.cell_id][name]
            for base, ablated in complete
            if name in results[base.cell_id] and name in results[ablated.cell_id]
        ]
        if not base_vals:
            continue
        champion_mean = _mean(base_vals)
        ablated_mean = _mean(ablated_vals)
        harm = metric_harm(name, champion_mean, ablated_mean)
        deltas.append(
            MetricDelta(
                metric=name,
                champion=champion_mean,
                ablated=ablated_mean,
                direction=metric_direction(name),
                harm=harm,
            )
        )
        if harm is not None:
            harms.append(harm)
    harm_score = _mean(harms)
    if harm_score > INDIFFERENCE:
        sign = 1
    elif harm_score < -INDIFFERENCE:
        sign = -1
    else:
        sign = 0
    return ImportanceEntry(
        axis=axis_name,
        level=level,
        champion_level=champion_level,
        pairs=len(complete),
        harm_score=harm_score,
        sign=sign,
        deltas=deltas,
    )


def score_importance(
    matrix: RunMatrix,
    results: Mapping[str, Mapping[str, float]],
) -> List[ImportanceEntry]:
    """Rank every (axis, non-champion level) ablation by harm vs champion.

    ``results`` maps cell IDs to numeric metric dicts; ablations whose
    pairs are entirely missing from it are skipped (partial reports), but a
    missing champion-side cell in *every* pair of *every* axis yields an
    empty ranking — callers that need completeness raise on that.
    """
    entries: List[ImportanceEntry] = []
    for axis in matrix.spec.axes:
        for level in axis.ablations:
            pairs = _matched_pairs(matrix, axis.name, level)
            entry = _score_entry(
                axis.name, level, axis.champion, pairs, results
            )
            if entry is not None:
                entries.append(entry)
    # Most harmful first; (axis, level) breaks exact-score ties stably.
    entries.sort(key=lambda e: (-e.harm_score, e.axis, e.level))
    for position, entry in enumerate(entries):
        entry.rank = position + 1
    return entries


def require_complete(
    matrix: RunMatrix, results: Mapping[str, Mapping[str, float]]
) -> None:
    """Raise :class:`AblationError` naming any cell absent from results."""
    missing = [c.cell_id for c in matrix.cells if c.cell_id not in results]
    if missing:
        raise AblationError(
            f"campaign {matrix.spec.name!r} is missing results for "
            f"{len(missing)} of {len(matrix.cells)} cells: "
            + ", ".join(missing[:6])
            + ("..." if len(missing) > 6 else "")
        )
