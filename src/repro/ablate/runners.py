"""Pluggable cell runners: assignment + params + seed -> metric dict.

A runner is a plain callable ``(assignment, params, seed) -> metrics``
executing ONE cell of a campaign.  The contract that makes the rest of the
engine trivial:

* **pure per seed** — a runner must be a deterministic function of its
  three arguments (every simulator underneath already is), so re-executing
  a cell is always safe and a parallel fan-out is bit-identical to serial;
* **flat numeric metrics** — the returned dict maps metric names to floats;
  names choose their scoring direction via
  :data:`repro.ablate.importance.SCORING_DIRECTIONS` patterns;
* **registered by name** — the spec carries only the runner's *name*
  (part of every cell's run identity), resolved through the registry at
  execution time, including inside worker processes.

Shipped runners cover the paper's component set and the fleet policies:

``pipeline``  CFP32 MAC design / hetero layout / interleaving / overlap
              through :class:`~repro.core.ecssd.ECSSDevice` trace mode;
``serve``     admission policy x degradation ladder through the SLO
              serving simulator;
``faults``    ECC ladder tiers x RBER scale through the fault matrix;
``cluster``   placement x steal x autoscale through the fleet simulator
              under a shared seeded fault plan;
``synthetic`` a closed-form known-effect fixture the unit tests (and the
              CI smoke campaign) score against.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Mapping, Tuple

from ..errors import AblationError, ConfigurationError

if TYPE_CHECKING:  # annotation-only; runners import lazily at call time
    from ..serve.scheduler import AffineServiceModel
    from ..workloads.traces import CandidateTraceGenerator

Assignment = Mapping[str, str]
Params = Mapping[str, object]
RunnerFn = Callable[[Assignment, Params, int], Dict[str, float]]

_RUNNERS: Dict[str, RunnerFn] = {}


def register_runner(name: str, fn: RunnerFn, replace: bool = False) -> None:
    """Register a runner under ``name`` (error on clobber unless replace)."""
    if not name:
        raise ConfigurationError("runner name cannot be empty")
    if name in _RUNNERS and not replace:
        raise ConfigurationError(
            f"runner {name!r} is already registered; pass replace=True"
        )
    _RUNNERS[name] = fn


def get_runner(name: str) -> RunnerFn:
    if name not in _RUNNERS:
        raise AblationError(
            f"unknown runner {name!r}; registered: "
            + ", ".join(sorted(_RUNNERS))
        )
    return _RUNNERS[name]


def runner_names() -> Tuple[str, ...]:
    return tuple(sorted(_RUNNERS))


def _level(assignment: Assignment, axis: str, default: str) -> str:
    return str(assignment.get(axis, default))


def _float_param(params: Params, key: str, default: float) -> float:
    return float(params.get(key, default))  # type: ignore[arg-type]


def _int_param(params: Params, key: str, default: int) -> int:
    return int(params.get(key, default))  # type: ignore[arg-type]


def _str_param(params: Params, key: str, default: str) -> str:
    return str(params.get(key, default))


# ---------------------------------------------------------------------------
# pipeline: the paper's co-designed components (Figs. 8-12 territory)
# ---------------------------------------------------------------------------

def run_pipeline_cell(
    assignment: Assignment, params: Params, seed: int
) -> Dict[str, float]:
    """One device-pipeline cell: batch timing at Table 3 scale.

    Axes: ``mac`` (cfp32 / sk-hynix / naive), ``layout`` (heterogeneous /
    homogeneous), ``interleaving`` (learned / uniform / sequential),
    ``overlap`` (on / off).
    """
    from ..cfp32.circuits import MacDesign
    from ..core.ecssd import ECSSDevice
    from ..core.pipeline import PipelineFeatures
    from ..workloads.benchmarks import get_benchmark
    from ..workloads.traces import CandidateTraceGenerator, LabelHotnessModel

    mac_by_level = {
        "cfp32": MacDesign.ALIGNMENT_FREE,
        "sk-hynix": MacDesign.SK_HYNIX,
        "naive": MacDesign.NAIVE,
    }
    mac_level = _level(assignment, "mac", "cfp32")
    if mac_level not in mac_by_level:
        raise AblationError(f"pipeline runner: unknown mac level {mac_level!r}")
    layout = _level(assignment, "layout", "heterogeneous")
    if layout not in ("heterogeneous", "homogeneous"):
        raise AblationError(f"pipeline runner: unknown layout level {layout!r}")
    interleaving = _level(assignment, "interleaving", "learned")
    overlap = _level(assignment, "overlap", "on")
    if overlap not in ("on", "off"):
        raise AblationError(f"pipeline runner: unknown overlap level {overlap!r}")

    spec = get_benchmark(_str_param(params, "benchmark", "GNMT-E32K"))
    queries = _int_param(params, "queries", 16)
    hotness = LabelHotnessModel(
        num_labels=spec.num_labels, run_length=1, seed=seed
    )
    generator = CandidateTraceGenerator(
        hotness,
        candidate_ratio=_float_param(params, "candidate_ratio", 0.10),
        query_noise=0.05,
    )
    features = PipelineFeatures(
        mac_design=mac_by_level[mac_level],
        heterogeneous=layout == "heterogeneous",
        overlap=overlap == "on",
        label=f"{mac_level}/{layout}/{interleaving}/{overlap}",
    )
    device = ECSSDevice(features=features, interleaving=interleaving)
    device.deploy_spec(spec)
    report = device.run_trace(
        generator,
        queries=queries,
        sample_tiles=_int_param(params, "sample_tiles", 6),
        train_queries=_int_param(params, "train_queries", 200),
        predictor_fidelity=_float_param(params, "predictor_fidelity", 0.9),
        seed=seed,
    )
    batch_time = float(report.scaled_total_time)
    # The end-to-end batch can be fetch-bound, hiding a slower MAC under
    # the flash stream; probe the accelerator's per-tile classify time so
    # the mac axis stays measurable (Fig. 9's iso-area throughput gap).
    deployment = device.deployment
    assert deployment is not None
    probe_candidates = max(
        1,
        int(
            _float_param(params, "candidate_ratio", 0.10)
            * deployment.tile_vectors
        ),
    )
    fp32_compute = device.pipeline.accelerator.fp32_classify_time(
        probe_candidates, deployment.hidden_dim, spec.batch_size
    )
    return {
        "batch_time_s": batch_time,
        "time_per_query_s": batch_time / queries,
        "throughput_qps": queries / batch_time,
        "fp32_classify_time_s": float(fp32_compute),
        "fp32_channel_utilization": float(report.fp32_channel_utilization),
    }


# ---------------------------------------------------------------------------
# serve: SLO-plane policies (admission, degradation)
# ---------------------------------------------------------------------------

def _calibrated_service(
    params: Params, seed: int
) -> Tuple["AffineServiceModel", "CandidateTraceGenerator"]:
    """Affine service model fitted to a real batch sweep (shared knee)."""
    from ..core.batching import BatchingAnalyzer
    from ..serve import AffineServiceModel
    from ..workloads.benchmarks import get_benchmark
    from ..workloads.traces import CandidateTraceGenerator, LabelHotnessModel

    spec = get_benchmark(_str_param(params, "benchmark", "GNMT-E32K"))
    hotness = LabelHotnessModel(num_labels=spec.num_labels, run_length=1, seed=seed)
    generator = CandidateTraceGenerator(
        hotness, candidate_ratio=0.10, query_noise=0.05
    )
    analyzer = BatchingAnalyzer(
        spec, generator, sample_tiles=_int_param(params, "sample_tiles", 4)
    )
    points = analyzer.sweep((1, 2, 4, 8, 16, 32))
    return AffineServiceModel.from_batch_points(points), generator


def run_serve_cell(
    assignment: Assignment, params: Params, seed: int
) -> Dict[str, float]:
    """One serving-stack cell: goodput / shed / tail under offered load.

    Axes: ``admission`` (depth = queue-depth only, token-bucket = bucket at
    the saturating rate), ``degrade`` (on = default ladder, off = pinned at
    full fidelity).
    """
    from ..serve import (
        DegradationLadder,
        DegradeStep,
        ServingConfig,
        build_serving_stack,
        saturating_rate,
        shard_hot_degrees,
    )
    from ..workloads.streams import poisson_arrivals

    admission = _level(assignment, "admission", "token-bucket")
    if admission not in ("token-bucket", "depth"):
        raise AblationError(
            f"serve runner: unknown admission level {admission!r}"
        )
    degrade = _level(assignment, "degrade", "on")
    if degrade not in ("on", "off"):
        raise AblationError(f"serve runner: unknown degrade level {degrade!r}")

    service, generator = _calibrated_service(params, seed)
    shards = _int_param(params, "shards", 2)
    probe = ServingConfig(
        slo=_float_param(params, "slo_s", 0.020),
        shards=shards,
        replicas=_int_param(params, "replicas", 1),
    )
    capacity = saturating_rate(service, probe)
    rate = capacity * _float_param(params, "rate_multiplier", 1.5)
    config = ServingConfig(
        slo=probe.slo,
        shards=probe.shards,
        replicas=probe.replicas,
        token_rate=rate if admission == "token-bucket" else None,
    )
    ladder = (
        DegradationLadder()
        if degrade == "on"
        else DegradationLadder(steps=(DegradeStep("full"),))
    )
    degrees = shard_hot_degrees(generator, shards, tile_size=512)
    simulator = build_serving_stack(
        service, config, hot_degrees=degrees, ladder=ladder
    )
    arrivals = poisson_arrivals(
        rate, _int_param(params, "num_queries", 2000), seed=seed
    )
    report = simulator.run(arrivals)
    metrics = {
        "goodput_qps": float(report.goodput),
        "shed_rate": float(report.shed_rate),
        "slo_attainment": float(report.slo_attainment),
        "max_degrade_level": float(report.max_degrade_level),
    }
    if report.completed:
        metrics["p99_ms"] = float(report.p99) * 1e3
        metrics["p50_ms"] = float(report.p50) * 1e3
    return metrics


# ---------------------------------------------------------------------------
# faults: ECC ladder tiers under the RBER surface
# ---------------------------------------------------------------------------

def run_faults_cell(
    assignment: Assignment, params: Params, seed: int
) -> Dict[str, float]:
    """One reliability cell: retention / latency under one ECC ladder tier.

    Axes: ``ecc`` (full / no-retry / hard-only), ``rber`` (scale as a
    string, e.g. "1" / "5" / "10").
    """
    from ..faults.harness import run_fault_matrix
    from ..faults.model import EccConfig

    level = _level(assignment, "ecc", "full")
    default = EccConfig()
    if level == "full":
        ecc = default
    elif level == "no-retry":
        ecc = EccConfig(max_retries=0)
    elif level == "hard-only":
        ecc = EccConfig(
            soft_limit_bits=default.fast_limit_bits,
            soft_latency=default.fast_latency,
            max_retries=0,
        )
    else:
        raise AblationError(f"faults runner: unknown ecc level {level!r}")
    scale = float(_level(assignment, "rber", _str_param(params, "rber", "5")))
    fault_class = _str_param(params, "fault_class", "rber")
    matrix = run_fault_matrix(
        num_labels=_int_param(params, "num_labels", 2048),
        num_queries=_int_param(params, "num_queries", 8),
        seed=seed,
        rber_scales=(scale,),
        fault_classes=(fault_class,),
        storm_pages=_int_param(params, "storm_pages", 64),
        ecc=ecc,
    )
    cell = matrix.cell(fault_class, scale)
    storm = cell["storm"]
    assert isinstance(storm, dict)
    return {
        "retention": float(cell["retention"]),  # type: ignore[arg-type]
        "latency_vs_clean": float(cell["latency_vs_clean"]),  # type: ignore[arg-type]
        "read_latency_s": float(storm["mean_read_latency_s"]),
        "failed_reads": float(storm["failed_reads"]),
    }


# ---------------------------------------------------------------------------
# cluster: fleet policies under a shared seeded fault campaign
# ---------------------------------------------------------------------------

def run_cluster_cell(
    assignment: Assignment, params: Params, seed: int
) -> Dict[str, float]:
    """One fleet cell: goodput / tail / outage under the shared fault plan.

    Axes: ``placement`` (rack-spread / locality-packed / hotness-weighted),
    ``steal`` (newest / oldest / none), ``autoscale`` (on / off).
    """
    from ..cluster import (
        ClusterConfig,
        build_cluster,
        cluster_saturating_rate,
    )
    from ..faults import ClusterFaultConfig
    from ..serve import shard_hot_degrees
    from ..workloads.streams import poisson_arrivals

    shards = _int_param(params, "shards", 4)
    config = ClusterConfig(
        data_nodes=_int_param(params, "data_nodes", 8),
        service_nodes=_int_param(params, "service_nodes", 4),
        shards=shards,
        replicas=_int_param(params, "replicas", 24),
        racks=_int_param(params, "racks", 2),
        slots_per_node=_int_param(params, "slots_per_node", 2),
        slo=_float_param(params, "slo_s", 0.05),
        placement_strategy=_level(assignment, "placement", "rack-spread"),
        steal_policy=_level(assignment, "steal", "newest"),
        autoscale=_level(assignment, "autoscale", "on") == "on",
    )
    service, generator = _calibrated_service(params, seed)
    degrees = list(shard_hot_degrees(generator, shards, tile_size=512))
    capacity = cluster_saturating_rate(service, config)
    rate = capacity * _float_param(params, "rate_multiplier", 1.0)
    arrivals = poisson_arrivals(
        rate, _int_param(params, "num_requests", 6000), seed=seed
    )
    span = float(arrivals[-1])
    fault_spec = _str_param(
        params, "fault_plan", "node-crash=2,partition=1,slow-node=2"
    )
    fault_config = (
        ClusterFaultConfig.from_spec(fault_spec, seed=seed, horizon=0.8 * span)
        if fault_spec
        else ClusterFaultConfig.disabled()
    )
    simulator = build_cluster(
        service, config, seed=seed, fault_config=fault_config,
        hot_degrees=degrees,
    )
    from ..obs.causal import CausalCollector, installed

    collector = CausalCollector(seed=seed)
    with installed(collector):
        report = simulator.run(arrivals)
    metrics = {
        "goodput_qps": float(report.goodput),
        "p99_ms": float(report.p99) * 1e3,
        "shed_rate": float(report.shed_rate),
        "slo_attainment": float(report.slo_attainment),
        "outage_seconds": float(report.failover_downtime),
        "parked_seconds": float(report.parked_time),
        "cache_hit_rate": float(report.cache_hit_rate),
        "steal_count": float(report.steals),
        "utilization_skew": float(report.utilization_skew),
    }
    metrics.update(collector.report().stage_metrics())
    return metrics


# ---------------------------------------------------------------------------
# synthetic: closed-form known effects for tests and the CI smoke campaign
# ---------------------------------------------------------------------------

def run_synthetic_cell(
    assignment: Assignment, params: Params, seed: int
) -> Dict[str, float]:
    """A closed-form cell with effects declared in ``params["effects"]``.

    ``effects`` maps ``"axis=level"`` to per-metric relative deltas, e.g.
    ``{"mac=naive": {"goodput": -0.4, "p99": 0.8}}`` — so tests know the
    exact harm every ablation must score.  Deterministic and instant.
    """
    effects = params.get("effects", {})
    assert isinstance(effects, Mapping)
    goodput = _float_param(params, "base_goodput", 1000.0)
    p99 = _float_param(params, "base_p99_ms", 10.0)
    for axis_name in sorted(assignment):
        effect = effects.get(f"{axis_name}={assignment[axis_name]}", {})
        assert isinstance(effect, Mapping)
        goodput *= 1.0 + float(effect.get("goodput", 0.0))  # type: ignore[arg-type]
        p99 *= 1.0 + float(effect.get("p99", 0.0))  # type: ignore[arg-type]
    return {"goodput_qps": goodput, "p99_ms": p99}


_BUILTINS: List[Tuple[str, RunnerFn]] = [
    ("pipeline", run_pipeline_cell),
    ("serve", run_serve_cell),
    ("faults", run_faults_cell),
    ("cluster", run_cluster_cell),
    ("synthetic", run_synthetic_cell),
]
for _name, _fn in _BUILTINS:
    register_runner(_name, _fn)
