"""Approximate projection: shrink the hidden dimension D to K (§2.1).

The screener operates on projected features/weights so the approximate
vector-matrix multiply costs K instead of D multiplies per label.  We use a
seeded sparse sign (Achlioptas-style) random projection: entries are
±1/sqrt(K) with probability 1/2 each, which preserves inner products in
expectation (Johnson–Lindenstrauss) and is cheap to generate at any scale.
The paper's projection scale is 0.25 (K = D/4, §6.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import WorkloadError

DEFAULT_PROJECTION_SCALE = 0.25


@dataclass(frozen=True)
class ProjectionMatrix:
    """A D -> K projection: ``projected = x @ matrix`` for row vectors."""

    matrix: np.ndarray  # (D, K) float32

    def __post_init__(self) -> None:
        if self.matrix.ndim != 2:
            raise WorkloadError("projection matrix must be 2-D (D, K)")
        if self.matrix.shape[1] > self.matrix.shape[0]:
            raise WorkloadError(
                f"projection must shrink: K={self.matrix.shape[1]} >"
                f" D={self.matrix.shape[0]}"
            )

    @property
    def input_dim(self) -> int:
        return self.matrix.shape[0]

    @property
    def output_dim(self) -> int:
        return self.matrix.shape[1]

    @classmethod
    def create(
        cls,
        input_dim: int,
        scale: float = DEFAULT_PROJECTION_SCALE,
        seed: int = 0,
    ) -> "ProjectionMatrix":
        """Random sign projection with ``K = round(input_dim * scale)``."""
        if input_dim <= 0:
            raise WorkloadError(f"input_dim must be positive, got {input_dim}")
        if not (0.0 < scale <= 1.0):
            raise WorkloadError(f"projection scale must be in (0, 1], got {scale}")
        output_dim = max(1, round(input_dim * scale))
        rng = np.random.default_rng(seed)
        signs = rng.integers(0, 2, size=(input_dim, output_dim), dtype=np.int8)
        matrix = (signs.astype(np.float32) * 2.0 - 1.0) / np.float32(
            np.sqrt(output_dim)
        )
        return cls(matrix=matrix)


def project(data: np.ndarray, projection: ProjectionMatrix) -> np.ndarray:
    """Project rows of ``data`` (…, D) down to (…, K)."""
    if data.shape[-1] != projection.input_dim:
        raise WorkloadError(
            f"data dim {data.shape[-1]} != projection input dim"
            f" {projection.input_dim}"
        )
    return np.asarray(data, dtype=np.float32) @ projection.matrix
