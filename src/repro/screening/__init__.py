"""Approximate screening algorithm for extreme classification (§2.1).

This package is the algorithmic substrate ECSSD accelerates — the ENMC
(MICRO'21) screening pipeline:

1. **Projection** — features and the big FP32 weight matrix are projected
   from hidden dimension D to a shrunk dimension K (paper: K = D/4).
2. **Quantization** — projected weights/features become 4-bit integers.
3. **Screening** — an INT4 vector-matrix multiply scores all L labels
   approximately; a pre-trained threshold keeps ~10% as candidates.
4. **Candidate-only classification** — only the candidates' FP32 weight
   vectors are fetched and multiplied in full precision; the top-k of those
   are the final predictions.

:class:`repro.screening.model.ApproximateScreeningModel` glues the stages.
"""

from .projection import ProjectionMatrix, project
from .quantization import Int4Quantizer, QuantizedMatrix, pack_int4, unpack_int4
from .screener import ScreenResult, Int4Screener
from .thresholds import ThresholdCalibrator, calibrate_threshold
from .classifier import CandidateClassifier, ClassificationResult
from .model import ApproximateScreeningModel, InferenceStats
from .sensitivity import IntQuantizer, SensitivityPoint, sensitivity_sweep
from .topk import StreamingTopK, offline_topk

__all__ = [
    "ProjectionMatrix",
    "project",
    "Int4Quantizer",
    "QuantizedMatrix",
    "pack_int4",
    "unpack_int4",
    "ScreenResult",
    "Int4Screener",
    "ThresholdCalibrator",
    "calibrate_threshold",
    "CandidateClassifier",
    "ClassificationResult",
    "ApproximateScreeningModel",
    "InferenceStats",
    "IntQuantizer",
    "SensitivityPoint",
    "sensitivity_sweep",
    "StreamingTopK",
    "offline_topk",
]
