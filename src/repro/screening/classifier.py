"""Candidate-only full-precision classification (§2.1, CFP32_classify API).

After screening, only the candidate rows of the FP32 weight matrix are
multiplied with the original (un-projected) features; the top-k of those
scores are the final predictions.  This module also provides the exact
full-matrix reference used to validate that screening loses no accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..errors import WorkloadError


@dataclass
class ClassificationResult:
    """Final predictions for one feature batch."""

    top_labels: np.ndarray  # (B, k) label indices, best first
    top_scores: np.ndarray  # (B, k) corresponding scores
    flops: int  # floating-point operations actually spent

    @property
    def batch_size(self) -> int:
        return self.top_labels.shape[0]

    @property
    def k(self) -> int:
        return self.top_labels.shape[1]


class CandidateClassifier:
    """Scores candidate labels in FP32 and ranks the top-k."""

    def __init__(self, weights: np.ndarray) -> None:
        weights = np.asarray(weights, dtype=np.float32)
        if weights.ndim != 2:
            raise WorkloadError("weights must be (L, D)")
        self.weights = weights

    @property
    def num_labels(self) -> int:
        return self.weights.shape[0]

    @property
    def hidden_dim(self) -> int:
        return self.weights.shape[1]

    def classify(
        self,
        features: np.ndarray,
        candidates: Sequence[np.ndarray],
        top_k: int = 5,
    ) -> ClassificationResult:
        """Rank each query's candidates by exact FP32 score.

        Queries with fewer candidates than ``top_k`` are padded with label -1
        and score -inf so the output stays rectangular.
        """
        features = np.atleast_2d(np.asarray(features, dtype=np.float32))
        if features.shape[1] != self.hidden_dim:
            raise WorkloadError(
                f"feature dim {features.shape[1]} != weights dim {self.hidden_dim}"
            )
        if len(candidates) != features.shape[0]:
            raise WorkloadError("one candidate set per query is required")
        if top_k < 1:
            raise WorkloadError(f"top_k must be >= 1, got {top_k}")

        batch = features.shape[0]
        top_labels = np.full((batch, top_k), -1, dtype=np.int64)
        top_scores = np.full((batch, top_k), -np.inf, dtype=np.float32)
        flops = 0
        for i, (feature, selected) in enumerate(zip(features, candidates)):
            selected = np.asarray(selected, dtype=np.int64)
            if selected.size == 0:
                continue
            if selected.min() < 0 or selected.max() >= self.num_labels:
                raise WorkloadError("candidate index outside label range")
            scores = self.weights[selected] @ feature
            flops += 2 * selected.size * self.hidden_dim
            k = min(top_k, selected.size)
            order = np.argsort(scores)[::-1][:k]
            top_labels[i, :k] = selected[order]
            top_scores[i, :k] = scores[order]
        return ClassificationResult(
            top_labels=top_labels, top_scores=top_scores, flops=flops
        )

    def classify_full(
        self, features: np.ndarray, top_k: int = 5
    ) -> ClassificationResult:
        """Exact reference: score every label (what CPU-N computes)."""
        features = np.atleast_2d(np.asarray(features, dtype=np.float32))
        all_labels: List[np.ndarray] = [
            np.arange(self.num_labels, dtype=np.int64)
        ] * features.shape[0]
        return self.classify(features, all_labels, top_k=top_k)

    def exact_scores(self, features: np.ndarray) -> np.ndarray:
        """Full (B, L) FP32 score matrix (for calibration/validation)."""
        features = np.atleast_2d(np.asarray(features, dtype=np.float32))
        return features @ self.weights.T
