"""Sensitivity study: projection scale and screener precision (§6.1).

The paper sets projection scale 0.25 and 4-bit screener precision "according
to the sensitivity study in [22]" (ENMC).  This module reproduces that
study: sweep both knobs on a synthetic workload and measure screening
quality (top-1 agreement with exact classification and top-k recall of the
candidate sets), so the chosen operating point is justified by measurement
rather than citation.

A generalized :class:`IntQuantizer` (2..8 bits) supports the precision axis;
the 4-bit case matches :class:`repro.screening.quantization.Int4Quantizer`
exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..errors import WorkloadError
from .classifier import CandidateClassifier
from .projection import ProjectionMatrix, project
from .quantization import QuantizedMatrix
from .screener import Int4Screener


class IntQuantizer:
    """Symmetric per-row integer quantizer with configurable bit width."""

    def __init__(self, bits: int = 4) -> None:
        if not (2 <= bits <= 8):
            raise WorkloadError(f"bits must be in [2, 8], got {bits}")
        self.bits = bits
        self.max_code = 2 ** (bits - 1) - 1

    def quantize(self, data: np.ndarray) -> QuantizedMatrix:
        data = np.asarray(data, dtype=np.float32)
        if data.ndim != 2:
            raise WorkloadError("quantizer expects a 2-D array")
        max_abs = np.abs(data).max(axis=1)
        scales = np.where(max_abs > 0, max_abs / self.max_code, 1.0).astype(
            np.float32
        )
        codes = np.clip(
            np.rint(data / scales[:, None]), -self.max_code, self.max_code
        ).astype(np.int8)
        return QuantizedMatrix(codes=codes, scales=scales)


@dataclass(frozen=True)
class SensitivityPoint:
    """Screening quality at one (projection scale, precision) setting."""

    projection_scale: float
    bits: int
    candidate_ratio: float
    top1_agreement: float
    topk_recall: float
    int4_footprint_ratio: float  # screener bytes / FP32 matrix bytes


def _topk_recall(candidates, exact_scores: np.ndarray, k: int) -> float:
    hits = 0
    for selected, row in zip(candidates, exact_scores):
        true_top = np.argpartition(row, -k)[-k:]
        hits += int(np.isin(true_top, selected).sum())
    return hits / (len(candidates) * k)


def evaluate_point(
    weights: np.ndarray,
    features: np.ndarray,
    projection_scale: float,
    bits: int,
    candidate_ratio: float = 0.10,
    top_k: int = 5,
    seed: int = 0,
) -> SensitivityPoint:
    """Measure screening quality for one configuration."""
    weights = np.asarray(weights, dtype=np.float32)
    features = np.atleast_2d(np.asarray(features, dtype=np.float32))
    projection = ProjectionMatrix.create(
        weights.shape[1], scale=projection_scale, seed=seed
    )
    quantizer = IntQuantizer(bits)
    quantized = quantizer.quantize(project(weights, projection))
    screener = Int4Screener(quantized)  # arithmetic is width-agnostic int8
    classifier = CandidateClassifier(weights)

    projected = project(features, projection)
    screen = screener.screen_top_ratio(projected, candidate_ratio)
    exact = classifier.exact_scores(features)
    result = classifier.classify(features, screen.candidates, top_k=1)
    exact_top1 = exact.argmax(axis=1)
    agreement = float((result.top_labels[:, 0] == exact_top1).mean())
    recall = _topk_recall(screen.candidates, exact, min(top_k, weights.shape[0]))
    footprint = (
        weights.shape[0] * projection.output_dim * bits / 8
    ) / (weights.shape[0] * weights.shape[1] * 4)
    return SensitivityPoint(
        projection_scale=projection_scale,
        bits=bits,
        candidate_ratio=screen.candidate_ratio(),
        top1_agreement=agreement,
        topk_recall=recall,
        int4_footprint_ratio=footprint,
    )


def sensitivity_sweep(
    weights: np.ndarray,
    features: np.ndarray,
    projection_scales: Sequence[float] = (0.0625, 0.125, 0.25, 0.5),
    bit_widths: Sequence[int] = (2, 4, 8),
    candidate_ratio: float = 0.10,
    seed: int = 0,
) -> List[SensitivityPoint]:
    """The §6.1 sensitivity grid: scale x precision."""
    points: List[SensitivityPoint] = []
    for scale in projection_scales:
        for bits in bit_widths:
            points.append(
                evaluate_point(
                    weights,
                    features,
                    projection_scale=scale,
                    bits=bits,
                    candidate_ratio=candidate_ratio,
                    seed=seed,
                )
            )
    return points


def knee_point(points: Sequence[SensitivityPoint], threshold: float = 0.98):
    """Cheapest configuration whose top-1 agreement clears ``threshold``.

    "Cheapest" by screener footprint — the quantity the DRAM budget pays.
    Returns None when nothing clears the bar.
    """
    qualifying = [p for p in points if p.top1_agreement >= threshold]
    if not qualifying:
        return None
    return min(qualifying, key=lambda p: p.int4_footprint_ratio)
