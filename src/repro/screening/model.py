"""End-to-end approximate screening model (Fig. 2's whole pipeline).

:class:`ApproximateScreeningModel` owns the projection, the quantized
screener, the calibrated threshold, and the FP32 classifier, and runs the
two-stage inference: screen with INT4 on projected features, then classify
candidates in full precision.  It also reports the statistics the hardware
model needs — candidate sets (for layout/channel simulation) and FLOP counts
(for roofline/compute analysis).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..errors import WorkloadError
from .classifier import CandidateClassifier, ClassificationResult
from .projection import DEFAULT_PROJECTION_SCALE, ProjectionMatrix, project
from .quantization import Int4Quantizer, QuantizedMatrix
from .screener import Int4Screener, ScreenResult
from .thresholds import CalibrationReport, ThresholdCalibrator


@dataclass
class InferenceStats:
    """Everything one batch inference produced, algorithm-side."""

    result: ClassificationResult
    screen: ScreenResult
    candidate_ratio: float
    int4_ops: int
    fp32_flops: int
    fp32_flops_full: int  # what a no-screening run would have cost

    @property
    def flop_reduction(self) -> float:
        """Factor by which screening cut the FP32 work (paper: ~10x)."""
        if self.fp32_flops == 0:
            return float("inf")
        return self.fp32_flops_full / self.fp32_flops


class ApproximateScreeningModel:
    """Two-stage extreme classifier: INT4 screen + FP32 candidate ranking."""

    def __init__(
        self,
        weights: np.ndarray,
        projection_scale: float = DEFAULT_PROJECTION_SCALE,
        seed: int = 0,
    ) -> None:
        weights = np.asarray(weights, dtype=np.float32)
        if weights.ndim != 2:
            raise WorkloadError("weights must be (L, D)")
        self.projection = ProjectionMatrix.create(
            input_dim=weights.shape[1], scale=projection_scale, seed=seed
        )
        projected = project(weights, self.projection)
        self.quantized: QuantizedMatrix = Int4Quantizer().quantize(projected)
        self.screener = Int4Screener(self.quantized)
        self.classifier = CandidateClassifier(weights)
        self.threshold: Optional[float] = None

    # --- dimensions -------------------------------------------------------------
    @property
    def num_labels(self) -> int:
        return self.classifier.num_labels

    @property
    def hidden_dim(self) -> int:
        return self.classifier.hidden_dim

    @property
    def shrunk_dim(self) -> int:
        return self.screener.shrunk_dim

    # --- calibration ------------------------------------------------------------
    def calibrate(
        self,
        features: np.ndarray,
        target_ratio: float = 0.10,
        top_k: int = 5,
    ) -> CalibrationReport:
        """Pre-train the filtering threshold on calibration features."""
        features = np.atleast_2d(np.asarray(features, dtype=np.float32))
        projected = project(features, self.projection)
        exact = self.classifier.exact_scores(features)
        report = ThresholdCalibrator(self.screener, top_k=top_k).calibrate(
            projected, exact, target_ratio=target_ratio
        )
        self.threshold = report.threshold
        return report

    def set_threshold(self, threshold: float) -> None:
        """Directly install a threshold (the Filter_threshold API)."""
        self.threshold = float(threshold)

    # --- inference ----------------------------------------------------------------
    def infer(
        self,
        features: np.ndarray,
        top_k: int = 5,
        candidate_ratio: Optional[float] = None,
    ) -> InferenceStats:
        """Run screen-then-classify on a feature batch.

        With ``candidate_ratio`` set, screening keeps exactly that top
        fraction per query (the layout experiments' mode); otherwise the
        calibrated threshold is applied.
        """
        features = np.atleast_2d(np.asarray(features, dtype=np.float32))
        projected = project(features, self.projection)
        if candidate_ratio is not None:
            screen = self.screener.screen_top_ratio(projected, candidate_ratio)
        else:
            if self.threshold is None:
                raise WorkloadError(
                    "no threshold calibrated; call calibrate() or pass"
                    " candidate_ratio"
                )
            screen = self.screener.screen(projected, threshold=self.threshold)
        result = self.classifier.classify(features, screen.candidates, top_k=top_k)
        batch = features.shape[0]
        int4_ops = 2 * batch * self.num_labels * self.shrunk_dim
        full_flops = 2 * batch * self.num_labels * self.hidden_dim
        return InferenceStats(
            result=result,
            screen=screen,
            candidate_ratio=screen.candidate_ratio(),
            int4_ops=int4_ops,
            fp32_flops=result.flops,
            fp32_flops_full=full_flops,
        )

    def infer_exact(self, features: np.ndarray, top_k: int = 5) -> ClassificationResult:
        """Reference run without screening (full FP32 classification)."""
        return self.classifier.classify_full(features, top_k=top_k)

    def top1_agreement(self, features: np.ndarray) -> float:
        """Fraction of queries whose top-1 matches the exact classifier.

        The paper reports no accuracy drop from screening; this is the
        directly-checkable analogue on synthetic workloads.
        """
        stats = self.infer(features, top_k=1)
        exact = self.infer_exact(features, top_k=1)
        return float(
            (stats.result.top_labels[:, 0] == exact.top_labels[:, 0]).mean()
        )
