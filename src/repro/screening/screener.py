"""Low-precision approximate screening: INT4 scores + threshold filter (§2.1).

The screener computes approximate scores for every label with INT4 arithmetic
(what the accelerator's INT4 MAC array executes) and filters labels whose
approximate score clears a pre-trained threshold.  Those labels become the
*candidates* whose FP32 weight vectors are fetched from flash.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..errors import WorkloadError
from .quantization import Int4Quantizer, QuantizedMatrix


@dataclass
class ScreenResult:
    """Output of screening one feature batch against all L labels."""

    scores: np.ndarray  # (B, L) float32 approximate scores
    candidates: List[np.ndarray]  # per query: sorted int64 label indices
    threshold: np.ndarray  # (B,) thresholds actually applied

    @property
    def batch_size(self) -> int:
        return self.scores.shape[0]

    @property
    def num_labels(self) -> int:
        return self.scores.shape[1]

    def candidate_ratio(self) -> float:
        """Mean fraction of labels kept as candidates across the batch."""
        if not self.candidates:
            return 0.0
        total = sum(len(c) for c in self.candidates)
        return total / (len(self.candidates) * self.num_labels)

    def candidate_counts(self) -> np.ndarray:
        return np.array([len(c) for c in self.candidates], dtype=np.int64)


class Int4Screener:
    """Screens feature batches against a quantized (L, K) weight matrix.

    Scores are computed in integer arithmetic exactly as a MAC array would
    (int32 accumulate of int8×int8 products) then dequantized with the row
    and feature scales so thresholds live in the original score space.
    """

    def __init__(self, weights: QuantizedMatrix) -> None:
        self.weights = weights
        self._quantizer = Int4Quantizer()

    @property
    def num_labels(self) -> int:
        return self.weights.shape[0]

    @property
    def shrunk_dim(self) -> int:
        return self.weights.shape[1]

    def scores(self, projected_features: np.ndarray) -> np.ndarray:
        """Approximate (B, L) scores for already-projected (B, K) features."""
        features = np.atleast_2d(np.asarray(projected_features, dtype=np.float32))
        if features.shape[1] != self.shrunk_dim:
            raise WorkloadError(
                f"feature dim {features.shape[1]} != screener dim {self.shrunk_dim}"
            )
        fq = self._quantizer.quantize(features)
        int_scores = fq.codes.astype(np.int32) @ self.weights.codes.astype(np.int32).T
        return (
            int_scores.astype(np.float32)
            * fq.scales[:, None]
            * self.weights.scales[None, :]
        )

    def screen(
        self,
        projected_features: np.ndarray,
        threshold: Optional[np.ndarray] = None,
        min_candidates: int = 1,
    ) -> ScreenResult:
        """Score a batch and keep labels whose score clears the threshold.

        ``threshold`` may be a scalar, a (B,) array, or ``None`` (keep
        everything — degenerate but useful for calibration).  Every query
        keeps at least ``min_candidates`` labels (its best-scoring ones), so
        downstream classification always has something to rank.
        """
        scores = self.scores(projected_features)
        batch = scores.shape[0]
        if threshold is None:
            applied = np.full(batch, -np.inf, dtype=np.float32)
        else:
            applied = np.broadcast_to(
                np.asarray(threshold, dtype=np.float32), (batch,)
            ).copy()
        candidates: List[np.ndarray] = []
        for row, cutoff in zip(scores, applied):
            selected = np.flatnonzero(row >= cutoff)
            if len(selected) < min_candidates:
                selected = np.argsort(row)[-min_candidates:]
            candidates.append(np.sort(selected).astype(np.int64))
        return ScreenResult(scores=scores, candidates=candidates, threshold=applied)

    def screen_top_ratio(
        self, projected_features: np.ndarray, ratio: float
    ) -> ScreenResult:
        """Keep exactly the top ``ratio`` fraction of labels per query.

        This is the fixed-candidate-ratio mode the layout experiments use
        (Fig. 10 sweeps the ratio over {5, 10, 15, 20}%).
        """
        if not (0.0 < ratio <= 1.0):
            raise WorkloadError(f"candidate ratio must be in (0, 1], got {ratio}")
        scores = self.scores(projected_features)
        keep = max(1, int(round(self.num_labels * ratio)))
        candidates: List[np.ndarray] = []
        thresholds = np.empty(scores.shape[0], dtype=np.float32)
        for i, row in enumerate(scores):
            top = np.argpartition(row, -keep)[-keep:]
            candidates.append(np.sort(top).astype(np.int64))
            thresholds[i] = row[top].min()
        return ScreenResult(scores=scores, candidates=candidates, threshold=thresholds)
