"""Streaming top-k: the on-device result merger for tile-by-tile inference.

Classification proceeds tile by tile (§4.5), so the accelerator never sees
all scores at once — it must maintain a running top-k per query in its tiny
output buffer (Table 2: 1 KB FP32 output buffer) as tiles complete.
:class:`StreamingTopK` implements that merger with per-query min-heaps and
exposes the buffer-occupancy accounting that shows k=5..64 easily fits.

Invariant (property-tested): after consuming any sequence of tiles, the
merger's state equals the offline top-k over everything it has seen.
"""

from __future__ import annotations

import heapq
from typing import List, Sequence, Tuple

import numpy as np

from ..errors import WorkloadError


class StreamingTopK:
    """Running top-k (label, score) per query across tile updates."""

    def __init__(self, batch: int, k: int) -> None:
        if batch <= 0:
            raise WorkloadError("batch must be positive")
        if k <= 0:
            raise WorkloadError("k must be positive")
        self.batch = batch
        self.k = k
        # Per query: a min-heap of (score, -label); the root is the weakest
        # current member (lowest score; largest label among score ties), so
        # tie-breaking matches the offline reference's smallest-label rule.
        self._heaps: List[List[Tuple[float, int]]] = [[] for _ in range(batch)]
        self.updates = 0

    def update(
        self, query: int, labels: np.ndarray, scores: np.ndarray
    ) -> None:
        """Offer one query's scores for one tile's candidates."""
        if not (0 <= query < self.batch):
            raise WorkloadError(f"query {query} outside batch {self.batch}")
        labels = np.asarray(labels, dtype=np.int64)
        scores = np.asarray(scores, dtype=np.float64)
        if labels.shape != scores.shape or labels.ndim != 1:
            raise WorkloadError("labels/scores must be matching 1-D arrays")
        heap = self._heaps[query]
        for label, score in zip(labels.tolist(), scores.tolist()):
            entry = (score, -label)
            if len(heap) < self.k:
                heapq.heappush(heap, entry)
            elif entry > heap[0]:
                heapq.heapreplace(heap, entry)
        self.updates += 1

    def update_tile(
        self,
        candidates: Sequence[np.ndarray],
        scores: Sequence[np.ndarray],
    ) -> None:
        """Offer one tile's per-query candidate scores (batch-wide)."""
        if len(candidates) != self.batch or len(scores) != self.batch:
            raise WorkloadError("one candidate/score array per query required")
        for query in range(self.batch):
            self.update(query, candidates[query], scores[query])

    def results(self) -> Tuple[np.ndarray, np.ndarray]:
        """(labels, scores), best-first, padded with (-1, -inf)."""
        labels = np.full((self.batch, self.k), -1, dtype=np.int64)
        scores = np.full((self.batch, self.k), -np.inf, dtype=np.float64)
        for query, heap in enumerate(self._heaps):
            ordered = sorted(heap, key=lambda item: (-item[0], -item[1]))
            for rank, (score, neg_label) in enumerate(ordered):
                labels[query, rank] = -neg_label
                scores[query, rank] = score
        return labels, scores

    def threshold(self, query: int) -> float:
        """The score a new candidate must beat for ``query`` (-inf if open).

        This is also what makes threshold filtering *tighten* over tiles:
        the device can raise its screening bar as strong candidates appear.
        """
        heap = self._heaps[query]
        if len(heap) < self.k:
            return float("-inf")
        return heap[0][0]

    @property
    def buffer_bytes(self) -> int:
        """Output-buffer footprint: (score fp32 + label int32) per slot."""
        return self.batch * self.k * 8

    def fits_output_buffer(self, buffer_bytes: int = 1024) -> bool:
        """Does the running state fit Table 2's 1 KB FP32 output buffer?"""
        return self.buffer_bytes <= buffer_bytes


def offline_topk(
    all_labels: np.ndarray, all_scores: np.ndarray, k: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Reference: exact top-k over fully materialized (B, N) scores."""
    all_labels = np.asarray(all_labels, dtype=np.int64)
    all_scores = np.asarray(all_scores, dtype=np.float64)
    if all_labels.shape != all_scores.shape:
        raise WorkloadError("labels/scores shape mismatch")
    batch, n = all_scores.shape
    kk = min(k, n)
    out_labels = np.full((batch, k), -1, dtype=np.int64)
    out_scores = np.full((batch, k), -np.inf, dtype=np.float64)
    for q in range(batch):
        order = np.lexsort((all_labels[q], -all_scores[q]))[:kk]
        out_labels[q, :kk] = all_labels[q][order]
        out_scores[q, :kk] = all_scores[q][order]
    return out_labels, out_scores
