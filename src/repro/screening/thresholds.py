"""Threshold pre-training for the screener (§2.1, Filter_threshold API).

The paper filters candidates by comparing approximate scores against a
*pre-trained threshold* chosen so that roughly a target fraction of labels
(10% in the paper's headline numbers) survives screening while the true top-k
labels are retained.  :class:`ThresholdCalibrator` reproduces that procedure
on a calibration feature set: it picks the per-query score quantile matching
the target ratio, then averages into a single deployable threshold, and
reports the achieved ratio and top-k recall so callers can verify quality.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import WorkloadError
from .screener import Int4Screener


@dataclass(frozen=True)
class CalibrationReport:
    """Outcome of threshold calibration on a held-out feature set."""

    threshold: float
    target_ratio: float
    achieved_ratio: float
    topk_recall: float
    queries: int


def calibrate_threshold(
    screener: Int4Screener,
    projected_features: np.ndarray,
    target_ratio: float = 0.10,
) -> float:
    """Single global threshold achieving ``target_ratio`` candidates on average.

    The threshold is the mean over queries of each query's (1 - ratio)
    quantile of approximate scores — the same statistic a per-query quantile
    filter would use, collapsed to one deployable constant.
    """
    if not (0.0 < target_ratio <= 1.0):
        raise WorkloadError(f"target ratio must be in (0, 1], got {target_ratio}")
    scores = screener.scores(projected_features)
    quantile = 1.0 - target_ratio
    per_query = np.quantile(scores, quantile, axis=1)
    return float(per_query.mean())


class ThresholdCalibrator:
    """Calibrates and evaluates a screener threshold against exact top-k."""

    def __init__(self, screener: Int4Screener, top_k: int = 5) -> None:
        if top_k < 1:
            raise WorkloadError(f"top_k must be >= 1, got {top_k}")
        self.screener = screener
        self.top_k = top_k

    def calibrate(
        self,
        projected_features: np.ndarray,
        exact_scores: np.ndarray,
        target_ratio: float = 0.10,
    ) -> CalibrationReport:
        """Pick a threshold and measure achieved ratio + top-k recall.

        ``exact_scores`` are the full-precision (B, L) scores the screening
        is approximating; recall counts how many of each query's exact top-k
        labels survive the screen.
        """
        features = np.atleast_2d(projected_features)
        exact_scores = np.atleast_2d(exact_scores)
        if exact_scores.shape[0] != features.shape[0]:
            raise WorkloadError("feature/exact-score batch sizes differ")
        threshold = calibrate_threshold(self.screener, features, target_ratio)
        result = self.screener.screen(features, threshold=threshold)
        recall = self._topk_recall(result.candidates, exact_scores)
        return CalibrationReport(
            threshold=threshold,
            target_ratio=target_ratio,
            achieved_ratio=result.candidate_ratio(),
            topk_recall=recall,
            queries=features.shape[0],
        )

    def _topk_recall(self, candidates, exact_scores: np.ndarray) -> float:
        k = min(self.top_k, exact_scores.shape[1])
        hits = 0
        for selected, row in zip(candidates, exact_scores):
            true_top = np.argpartition(row, -k)[-k:]
            hits += np.isin(true_top, selected).sum()
        return hits / (len(candidates) * k)
