"""Symmetric 4-bit integer quantization for the screener (§2.1, §6.1).

Values quantize to the signed range [-7, 7] (code -8 is unused so the range
is symmetric) with a per-row scale.  Per-row scaling matters for the
interleaving framework: the paper's "hot degree" predictor is the sum of the
absolute 4-bit weight values of a row, so each row's codes must span the full
INT4 range for that sum to be informative.

``pack_int4``/``unpack_int4`` give the 2-codes-per-byte storage layout used
when sizing DRAM footprints (12.8 GB for S100M's 4-bit matrix).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import WorkloadError

INT4_MAX = 7
INT4_MIN = -7


@dataclass(frozen=True)
class QuantizedMatrix:
    """INT4 codes plus per-row dequantization scales."""

    codes: np.ndarray  # (L, K) int8, values in [-7, 7]
    scales: np.ndarray  # (L,) float32, dequant = codes * scales[:, None]

    def __post_init__(self) -> None:
        if self.codes.ndim != 2:
            raise WorkloadError("quantized codes must be 2-D")
        if self.scales.shape != (self.codes.shape[0],):
            raise WorkloadError(
                f"scales shape {self.scales.shape} != rows {self.codes.shape[0]}"
            )
        if self.codes.dtype != np.int8:
            raise WorkloadError(f"codes must be int8, got {self.codes.dtype}")

    @property
    def shape(self) -> tuple:
        return self.codes.shape

    def dequantize(self) -> np.ndarray:
        return self.codes.astype(np.float32) * self.scales[:, None]

    @property
    def nbytes_packed(self) -> int:
        """Bytes when stored 2 codes/byte plus one FP32 scale per row."""
        rows, cols = self.codes.shape
        return rows * ((cols + 1) // 2) + 4 * rows

    def abs_sum_per_row(self) -> np.ndarray:
        """Sum of |code| per row — the hot-degree signal of §5.3."""
        return np.abs(self.codes.astype(np.int32)).sum(axis=1)


class Int4Quantizer:
    """Symmetric per-row INT4 quantizer."""

    def quantize(self, data: np.ndarray) -> QuantizedMatrix:
        """Quantize rows of a 2-D float array to INT4 codes + scales.

        All-zero rows get scale 1.0 (codes are all zero anyway), keeping
        dequantization well-defined.
        """
        data = np.asarray(data, dtype=np.float32)
        if data.ndim != 2:
            raise WorkloadError("quantizer expects a 2-D array")
        max_abs = np.abs(data).max(axis=1)
        scales = np.where(max_abs > 0, max_abs / INT4_MAX, 1.0).astype(np.float32)
        codes = np.clip(
            np.rint(data / scales[:, None]), INT4_MIN, INT4_MAX
        ).astype(np.int8)
        return QuantizedMatrix(codes=codes, scales=scales)

    def quantize_vector(self, vector: np.ndarray) -> QuantizedMatrix:
        """Quantize a single vector as a 1-row matrix."""
        vector = np.asarray(vector, dtype=np.float32)
        if vector.ndim != 1:
            raise WorkloadError("quantize_vector expects a 1-D array")
        return self.quantize(vector[None, :])


def pack_int4(codes: np.ndarray) -> np.ndarray:
    """Pack int8 codes in [-8, 7] to 2 codes/byte (low nibble first)."""
    codes = np.asarray(codes, dtype=np.int8)
    if codes.ndim != 2:
        raise WorkloadError("pack_int4 expects a 2-D array")
    if codes.min(initial=0) < -8 or codes.max(initial=0) > 7:
        raise WorkloadError("codes outside INT4 range [-8, 7]")
    rows, cols = codes.shape
    if cols % 2:
        codes = np.concatenate([codes, np.zeros((rows, 1), dtype=np.int8)], axis=1)
    unsigned = (codes.astype(np.int16) & 0xF).astype(np.uint8)
    low = unsigned[:, 0::2]
    high = unsigned[:, 1::2]
    return (low | (high << 4)).astype(np.uint8)


def unpack_int4(packed: np.ndarray, cols: int) -> np.ndarray:
    """Inverse of :func:`pack_int4`; ``cols`` recovers an odd width."""
    packed = np.asarray(packed, dtype=np.uint8)
    if packed.ndim != 2:
        raise WorkloadError("unpack_int4 expects a 2-D array")
    if cols <= 0 or cols > packed.shape[1] * 2:
        raise WorkloadError(f"cols={cols} incompatible with packed width")
    low = (packed & 0xF).astype(np.int8)
    high = ((packed >> 4) & 0xF).astype(np.int8)
    # Sign-extend 4-bit two's complement.
    low = np.where(low > 7, low - 16, low).astype(np.int8)
    high = np.where(high > 7, high - 16, high).astype(np.int8)
    out = np.empty((packed.shape[0], packed.shape[1] * 2), dtype=np.int8)
    out[:, 0::2] = low
    out[:, 1::2] = high
    return out[:, :cols]
