"""Configuration objects mirroring the paper's Table 2 and calibration notes.

Three dataclasses describe the modeled hardware:

* :class:`FlashConfig` — NAND geometry and timing (channel/package/die/plane/
  block/page hierarchy, NVDDR3-class latencies).
* :class:`AcceleratorConfig` — the inserted accelerator (Table 2 bottom half):
  MAC counts, buffer sizes, clock, technology node.
* :class:`ECSSDConfig` — the full device (Table 2 top half) plus the
  calibration constants called out in DESIGN.md §5.

Every config validates itself on construction so that a broken experiment
setup fails at build time, not deep inside a simulation run.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from .errors import ConfigurationError
from .units import GiB, KiB, MiB, TiB, gbps, gflops, gops, us


@dataclass(frozen=True)
class FlashConfig:
    """NAND flash geometry and timing for one ECSSD.

    The default geometry follows Table 2: 8 channels, 4 KiB pages, 4 TB total
    capacity, NVDDR3 interface at 1 GB/s per channel.  The per-level fan-outs
    (packages/dies/planes/blocks/pages) are chosen so the hierarchy multiplies
    out to the advertised capacity and match common TLC-era parts.
    """

    channels: int = 8
    packages_per_channel: int = 4
    dies_per_package: int = 2
    planes_per_die: int = 2
    blocks_per_plane: int = 4096
    pages_per_block: int = 2048
    page_size: int = 4 * KiB
    channel_bandwidth: float = gbps(1.0)
    # NVDDR3-class NAND timing.  tR is the array sense time for one page;
    # tPROG and tBERS are program and erase times.  The transfer of a sensed
    # page over the channel bus is modeled separately from tR.  With 8 dies
    # per channel, tR = 30 us keeps streaming reads bus-limited (30/8 < 4 us
    # page transfer), honoring Table 2's 1 GB/s-per-channel figure.
    read_latency: float = us(30.0)
    program_latency: float = us(660.0)
    erase_latency: float = us(3500.0)

    def __post_init__(self) -> None:
        for name in (
            "channels",
            "packages_per_channel",
            "dies_per_package",
            "planes_per_die",
            "blocks_per_plane",
            "pages_per_block",
            "page_size",
        ):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"FlashConfig.{name} must be positive")
        for name in ("channel_bandwidth", "read_latency", "program_latency", "erase_latency"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"FlashConfig.{name} must be positive")

    @property
    def dies_per_channel(self) -> int:
        return self.packages_per_channel * self.dies_per_package

    @property
    def pages_per_plane(self) -> int:
        return self.blocks_per_plane * self.pages_per_block

    @property
    def pages_per_die(self) -> int:
        return self.planes_per_die * self.pages_per_plane

    @property
    def pages_per_channel(self) -> int:
        return self.dies_per_channel * self.pages_per_die

    @property
    def total_pages(self) -> int:
        return self.channels * self.pages_per_channel

    @property
    def capacity_bytes(self) -> int:
        return self.total_pages * self.page_size

    @property
    def internal_bandwidth(self) -> float:
        """Aggregate channel-level internal bandwidth (all channels busy)."""
        return self.channels * self.channel_bandwidth

    @property
    def page_transfer_time(self) -> float:
        """Bus time to move one page over a single channel."""
        return self.page_size / self.channel_bandwidth


@dataclass(frozen=True)
class AcceleratorConfig:
    """The inserted accelerator, per Table 2 (bottom) and Table 4.

    Peak throughputs follow §6.1: 256 INT4 MACs at 400 MHz give 200 GOPS (2
    ops per MAC-cycle), and 64 FP32 MACs give ~50 GFLOPS with the
    alignment-free circuit.  ``naive_fp32_throughput`` is the iso-area naive
    circuit's 29.2 GFLOPS quoted in §4.2 — it is what the "naive MAC" ablation
    steps of Fig. 8 use.
    """

    technology_nm: int = 28
    voltage: float = 0.9
    frequency_hz: float = 400e6
    fp32_macs: int = 64
    int4_macs: int = 256
    index_buffer: int = 4 * KiB
    int4_weight_buffer: int = 128 * KiB
    int4_input_buffer: int = 4 * KiB
    int4_output_buffer: int = 2 * KiB
    fp32_input_buffer: int = 100 * KiB
    fp32_weight_buffer: int = 400 * KiB
    fp32_output_buffer: int = 1 * KiB
    fp32_throughput: float = gflops(50.0)
    naive_fp32_throughput: float = gflops(29.2)
    int4_throughput: float = gops(200.0)

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0 or self.voltage <= 0:
            raise ConfigurationError("accelerator clock/voltage must be positive")
        if self.fp32_macs <= 0 or self.int4_macs <= 0:
            raise ConfigurationError("MAC counts must be positive")
        for name in ("fp32_throughput", "naive_fp32_throughput", "int4_throughput"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"AcceleratorConfig.{name} must be positive")

    @property
    def buffer_total(self) -> int:
        """Total accelerator-private SRAM, excluding the SSD's 4 MB buffer."""
        return (
            self.index_buffer
            + self.int4_weight_buffer
            + self.int4_input_buffer
            + self.int4_output_buffer
            + self.fp32_input_buffer
            + self.fp32_weight_buffer
            + self.fp32_output_buffer
        )


@dataclass(frozen=True)
class ECSSDConfig:
    """Full ECSSD device configuration (Table 2) plus calibration constants."""

    flash: FlashConfig = field(default_factory=FlashConfig)
    accelerator: AcceleratorConfig = field(default_factory=AcceleratorConfig)
    dram_capacity: int = 16 * GiB
    dram_bandwidth: float = gbps(12.8)
    data_buffer: int = 4 * MiB
    host_bandwidth: float = gbps(3.2)  # PCIe 3.0 x4, effective
    # Embedded-processor FTL overhead per flash command (L2P lookup etc.).
    # Kept well under the 4 us page bus time so a fully pipelined channel
    # sustains close to its advertised 1 GB/s.
    ftl_command_overhead: float = us(0.5)
    # Area budget guideline from §3.3: one Cortex-R5 at 28 nm.
    area_budget_mm2: float = 0.21

    def __post_init__(self) -> None:
        if self.dram_capacity <= 0 or self.data_buffer <= 0:
            raise ConfigurationError("DRAM/data buffer capacities must be positive")
        for name in ("dram_bandwidth", "host_bandwidth"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"ECSSDConfig.{name} must be positive")
        if self.ftl_command_overhead < 0:
            raise ConfigurationError("FTL overhead cannot be negative")
        if self.area_budget_mm2 <= 0:
            raise ConfigurationError("area budget must be positive")

    @property
    def capacity_bytes(self) -> int:
        return self.flash.capacity_bytes

    @property
    def internal_bandwidth(self) -> float:
        return self.flash.internal_bandwidth

    def with_channels(self, channels: int) -> "ECSSDConfig":
        """A copy of this config with a different channel count."""
        return replace(self, flash=replace(self.flash, channels=channels))

    def with_dram_capacity(self, dram_capacity: int) -> "ECSSDConfig":
        """A copy of this config with a different DRAM capacity (§7.1)."""
        return replace(self, dram_capacity=dram_capacity)


@dataclass(frozen=True)
class ObservabilityConfig:
    """Telemetry wiring for one process: enable flags and output paths.

    Passed to :func:`repro.obs.configure`.  Both recorders default to on
    (constructing this object at all is the opt-in); the output paths are
    optional — a ``None`` path means that exporter never writes a file.
    ``verbosity`` feeds :func:`repro.obs.configure_logging` (0 = WARNING,
    1 = INFO, 2+ = DEBUG).
    """

    metrics_enabled: bool = True
    tracing_enabled: bool = True
    trace_out: Optional[str] = None  # Chrome trace-event JSON (Perfetto)
    metrics_out: Optional[str] = None  # Prometheus text exposition
    jsonl_out: Optional[str] = None  # one JSON object per span/sample
    verbosity: int = 0
    # Streaming telemetry (repro.obs.streaming): when jsonl_stream_out is
    # set, finished spans bypass the in-memory list and stream to this JSONL
    # file; max_spans caps the in-memory tracer (ObservabilityError past the
    # cap with no sink); span_reservoir/span_seed keep a deterministic sample
    # of streamed spans; aggregate_window_s turns on windowed duration
    # aggregation with O(windows) memory.
    jsonl_stream_out: Optional[str] = None
    max_spans: Optional[int] = None
    span_reservoir: Optional[int] = None
    span_seed: int = 0
    aggregate_window_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.verbosity < 0:
            raise ConfigurationError("verbosity cannot be negative")
        for name in ("trace_out", "metrics_out", "jsonl_out", "jsonl_stream_out"):
            value = getattr(self, name)
            if value is not None and not str(value):
                raise ConfigurationError(f"ObservabilityConfig.{name} is empty")
        if self.max_spans is not None and self.max_spans < 1:
            raise ConfigurationError("max_spans must be >= 1 when set")
        if self.span_reservoir is not None and self.span_reservoir < 1:
            raise ConfigurationError("span_reservoir must be >= 1 when set")
        if self.aggregate_window_s is not None and self.aggregate_window_s <= 0:
            raise ConfigurationError("aggregate_window_s must be positive")


def default_config() -> ECSSDConfig:
    """The paper's Table 2 configuration: 4 TB, 8 channels, 16 GiB DRAM."""
    return ECSSDConfig()


def validate_table2(config: ECSSDConfig) -> None:
    """Assert the default geometry multiplies out to Table 2's capacity.

    Raises :class:`ConfigurationError` when the hierarchy does not produce a
    4 TB-class device (between 3.5 and 4.5 TiB) with 8 channels and 4 KiB
    pages — used as a self-check by the Table 2 experiment.
    """
    if config.flash.channels != 8:
        raise ConfigurationError("Table 2 requires 8 flash channels")
    if config.flash.page_size != 4 * KiB:
        raise ConfigurationError("Table 2 requires 4 KiB pages")
    capacity = config.capacity_bytes
    if not (3.5 * TiB <= capacity <= 4.5 * TiB):
        raise ConfigurationError(
            f"geometry yields {capacity} bytes; expected a 4 TB-class device"
        )
