"""ECSSD reproduction: in-storage computing for extreme classification.

Reproduction of *ECSSD: Hardware/Data Layout Co-Designed In-Storage-Computing
Architecture for Extreme Classification* (ISCA 2023).

Quick start::

    import numpy as np
    from repro import ECSSD
    from repro.workloads.synthetic import make_workload

    wl = make_workload(num_labels=4096, hidden_dim=256, num_queries=64)
    dev = ECSSD()
    dev.ecssd_enable()
    dev.weight_deploy(wl.weights, train_features=wl.features[:32])
    dev.int4_input_send(wl.features[32:40])
    dev.cfp32_input_send(dev.pre_align(wl.features[32:40]))
    dev.int4_screen()
    dev.cfp32_classify()
    print(dev.get_results())

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.screening` — the approximate screening algorithm;
* :mod:`repro.cfp32` — CFP32 format + alignment-free MAC circuit models;
* :mod:`repro.ssd` — the NAND SSD simulator substrate;
* :mod:`repro.layout` — interleaving strategies + heterogeneous layout;
* :mod:`repro.core` — the ECSSD device, pipeline, and Table 1 API;
* :mod:`repro.baselines` — CPU / GenStore / SmartSSD / GPU / ENMC models;
* :mod:`repro.workloads` — Table 3 benchmarks and synthetic data;
* :mod:`repro.analysis` — per-figure experiment drivers and reporting;
* :mod:`repro.obs` — metrics registry, sim-time span tracer, exporters.
"""

import logging as _logging

from .config import (
    AcceleratorConfig,
    ECSSDConfig,
    FlashConfig,
    ObservabilityConfig,
    default_config,
)
from .core.api import ECSSD
from .core.ecssd import ECSSDevice, PerformanceReport
from .core.pipeline import PipelineFeatures
from .errors import (
    AddressError,
    CapacityError,
    ConfigurationError,
    FormatError,
    ProtocolError,
    ReproError,
    SimulationError,
    WorkloadError,
)

__version__ = "1.0.0"

# Library etiquette: the package logs through the "repro" logger tree but
# never configures handlers for the host application; repro.obs.
# configure_logging (or the CLI's -v flag) opts in to console output.
_logging.getLogger(__name__).addHandler(_logging.NullHandler())

__all__ = [
    "ECSSD",
    "ECSSDevice",
    "PerformanceReport",
    "PipelineFeatures",
    "ECSSDConfig",
    "FlashConfig",
    "AcceleratorConfig",
    "ObservabilityConfig",
    "default_config",
    "ReproError",
    "ConfigurationError",
    "CapacityError",
    "AddressError",
    "SimulationError",
    "ProtocolError",
    "FormatError",
    "WorkloadError",
    "__version__",
]
