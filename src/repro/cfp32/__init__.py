"""Alignment-free floating-point MAC: CFP32 format and circuit models (§4.2).

Three pieces:

* :mod:`repro.cfp32.format` — host-side pre-alignment and the Compensation
  FP32 (CFP32) storage format: one shared exponent per vector, 31-bit shifted
  mantissas whose low 8 bits reuse the FP32 exponent field as compensation.
* :mod:`repro.cfp32.mac` — a bit-accurate software model of the in-storage
  alignment-free MAC datapath (integer mantissa multiply + integer
  accumulate), validated against IEEE FP64 reference dot products.
* :mod:`repro.cfp32.circuits` — component-level area/power models of the
  naive, SK-Hynix-style, and alignment-free FP32 MAC circuits, calibrated to
  the paper's synthesis anchors (Table 4, Fig. 9, §6.2).
"""

from .format import (
    CFP32Vector,
    prealign,
    decode,
    lossless_fraction,
    COMPENSATION_BITS,
)
from .mac import AlignmentFreeMac, dot_cfp32
from .serialization import (
    serialize_vector,
    deserialize_vector,
    vectors_to_pages,
)
from .circuits import (
    MacDesign,
    MacCircuitModel,
    AcceleratorAreaModel,
    required_fp32_gflops,
)

__all__ = [
    "CFP32Vector",
    "prealign",
    "decode",
    "lossless_fraction",
    "COMPENSATION_BITS",
    "AlignmentFreeMac",
    "dot_cfp32",
    "MacDesign",
    "MacCircuitModel",
    "AcceleratorAreaModel",
    "required_fp32_gflops",
    "serialize_vector",
    "deserialize_vector",
    "vectors_to_pages",
]
