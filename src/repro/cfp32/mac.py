"""Bit-accurate model of the alignment-free FP32 MAC datapath (§4.2).

The in-storage circuit receives two CFP32 vectors (pre-aligned input features
and pre-aligned weights), multiplies their 31-bit mantissas in an integer
multiplier, accumulates the signed products in a wide integer accumulator,
and normalizes once at the end — no per-element exponent comparison or
mantissa shifting.  This module executes exactly that arithmetic (Python
integers are exact, so the accumulator never overflows) and converts the
final accumulator back to a float with the two shared exponents.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import FormatError
from .format import BIAS, COMPENSATION_BITS, MANTISSA_BITS, CFP32Vector, prealign

# Exponent weight of one unit in a mantissa: 2^-(23+7) relative to 2^(E-BIAS).
_UNIT_EXP = MANTISSA_BITS + COMPENSATION_BITS  # 30


@dataclass
class MacTrace:
    """Observability record of one dot product through the datapath."""

    products: int  # number of mantissa multiplies
    accumulator: int  # final integer accumulator value
    result_exponent: int  # power-of-two scale applied to the accumulator
    result: float


class AlignmentFreeMac:
    """Executes CFP32 dot products the way the hardware would."""

    def dot(self, features: CFP32Vector, weights: CFP32Vector) -> MacTrace:
        """Integer-exact dot product of two CFP32 vectors."""
        if len(features) != len(weights):
            raise FormatError(
                f"vector length mismatch: {len(features)} vs {len(weights)}"
            )
        fm = features.mantissas.tolist()
        wm = weights.mantissas.tolist()
        accumulator = 0
        for a, b in zip(fm, wm):
            accumulator += a * b  # 31b x 31b -> 62b products, exact in Python
        result_exponent = (
            (features.shared_exponent - BIAS)
            + (weights.shared_exponent - BIAS)
            - 2 * _UNIT_EXP
        )
        result = float(accumulator) * (2.0 ** result_exponent)
        return MacTrace(
            products=len(fm),
            accumulator=accumulator,
            result_exponent=result_exponent,
            result=result,
        )

    def matvec(self, weights_rows, features: CFP32Vector) -> np.ndarray:
        """Dot the feature vector against each pre-aligned weight row."""
        return np.array(
            [self.dot(features, row).result for row in weights_rows],
            dtype=np.float64,
        )


def dot_cfp32(x: np.ndarray, w: np.ndarray) -> float:
    """Convenience: pre-align two float vectors and run the MAC datapath."""
    return AlignmentFreeMac().dot(prealign(x), prealign(w)).result


def reference_dot(x: np.ndarray, w: np.ndarray) -> float:
    """FP64 reference dot product for accuracy comparisons."""
    return float(
        np.dot(np.asarray(x, dtype=np.float64), np.asarray(w, dtype=np.float64))
    )
