"""Component-level area/power models of the three FP32 MAC circuits (§4.2, §6).

The paper synthesizes RTL at 28 nm; offline we model each MAC design as a sum
of datapath components with per-component area (arbitrary gate-equivalent
units) and activity-weighted power.  The component constants are calibrated
so the model reproduces every published anchor simultaneously:

* alignment-related components (exponent comparator + mantissa shifter) are
  37.7% of the naive MAC's area (§4.2);
* at iso-throughput the naive / SK-Hynix designs need 1.73x / 1.38x the
  alignment-free area and 1.53x / 1.19x its power (Fig. 9);
* 64 alignment-free MACs at 400 MHz occupy 0.139 mm² and 33.87 mW (Table 4),
  the naive equivalent needs 0.24 mm² and 51.8 mW (§6.2);
* under the 0.139 mm² FP32 budget the naive circuit reaches only ~29.2
  GFLOPS while the alignment-free circuit reaches 50 GFLOPS (§4.2).

The SK-Hynix design (ISSCC'22 [18]) aligns mantissas after multiplication,
halving the adder-side shifters/comparators and slightly simplifying the
result normalizer; the alignment-free design eliminates per-element
alignment entirely at the cost of a 24b -> 31b mantissa multiplier.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Dict

from ..errors import ConfigurationError


class MacDesign(enum.Enum):
    """The three FP32 MAC circuit organizations compared in Fig. 9."""

    NAIVE = "naive"
    SK_HYNIX = "sk_hynix"
    ALIGNMENT_FREE = "alignment_free"


# Per-component (area_units, activity_factor).  Multiplier area scales with
# mantissa width squared (array multiplier); adders scale linearly.
_ALPHA_MULT = 0.004  # area units per mantissa-bit^2
_NAIVE_COMPONENTS: Dict[str, tuple] = {
    "mantissa_multiplier_24b": (_ALPHA_MULT * 24 * 24, 1.00),
    "exponent_adder": (0.35, 0.60),
    "exponent_comparator": (0.93, 0.763),
    "alignment_shifter": (2.16, 1.05),
    "mantissa_adder": (0.50, 0.80),
    "normalizer": (1.46, 0.60),
    "rounding": (0.50, 0.49),
}
_AF_COMPONENTS: Dict[str, tuple] = {
    "mantissa_multiplier_31b": (_ALPHA_MULT * 31 * 31, 1.00),
    "integer_accumulator": (0.80, 0.80),
    "shared_exponent_logic": (0.10, 1.00),
}
# SK-Hynix: halve comparator+shifter, shave the normalizer.
_SKH_NORMALIZER_SAVING = 0.115

# Absolute calibration: 64 alignment-free MACs == 0.139 mm² / 33.87 mW.
_AF_AREA_UNITS = sum(a for a, _ in _AF_COMPONENTS.values())
_AF_POWER_UNITS = sum(a * p for a, p in _AF_COMPONENTS.values())
AREA_MM2_PER_UNIT = 0.139 / 64 / _AF_AREA_UNITS
POWER_MW_PER_UNIT = 33.87 / 64 / _AF_POWER_UNITS

# Table 4 non-FP32 components (28 nm, absolute).
INT4_MAC_COUNT = 256
INT4_ARRAY_AREA_MM2 = 0.044
INT4_ARRAY_POWER_MW = 19.04
COMPARATOR_AREA_MM2 = 0.0004
COMPARATOR_POWER_MW = 0.016
SCHEDULER_AREA_MM2 = 0.0002
SCHEDULER_POWER_MW = 0.004


@dataclass(frozen=True)
class MacCircuitModel:
    """Area/power of one FP32 MAC unit of a given design."""

    design: MacDesign

    def components(self) -> Dict[str, tuple]:
        """(area_units, activity) per component for this design."""
        if self.design is MacDesign.ALIGNMENT_FREE:
            return dict(_AF_COMPONENTS)
        components = dict(_NAIVE_COMPONENTS)
        if self.design is MacDesign.SK_HYNIX:
            area_c, act_c = components["exponent_comparator"]
            area_s, act_s = components["alignment_shifter"]
            area_n, act_n = components["normalizer"]
            components["exponent_comparator"] = (area_c / 2, act_c)
            components["alignment_shifter"] = (area_s / 2, act_s)
            components["normalizer"] = (area_n - _SKH_NORMALIZER_SAVING, act_n)
        return components

    @property
    def area_units(self) -> float:
        return sum(a for a, _ in self.components().values())

    @property
    def power_units(self) -> float:
        return sum(a * p for a, p in self.components().values())

    @property
    def area_mm2(self) -> float:
        """Absolute area of one MAC at 28 nm."""
        return self.area_units * AREA_MM2_PER_UNIT

    @property
    def power_mw(self) -> float:
        """Absolute power of one MAC at 400 MHz, 0.9 V."""
        return self.power_units * POWER_MW_PER_UNIT

    def alignment_area_fraction(self) -> float:
        """Share of area spent on alignment (comparators + shifters)."""
        components = self.components()
        alignment = sum(
            a
            for name, (a, _) in components.items()
            if name in ("exponent_comparator", "alignment_shifter")
        )
        return alignment / self.area_units

    # --- throughput <-> resources ------------------------------------------------
    def gflops_per_mac(self, frequency_hz: float = 400e6) -> float:
        """One MAC = 1 multiply + 1 add = 2 FLOPs per cycle."""
        return 2.0 * frequency_hz / 1e9

    def area_for_gflops(self, gflops: float, frequency_hz: float = 400e6) -> float:
        """mm² needed to sustain ``gflops`` (fractional MACs allowed)."""
        if gflops < 0:
            raise ConfigurationError("gflops must be non-negative")
        macs = gflops / self.gflops_per_mac(frequency_hz)
        return macs * self.area_mm2

    def power_for_gflops(self, gflops: float, frequency_hz: float = 400e6) -> float:
        """mW burned sustaining ``gflops``."""
        macs = gflops / self.gflops_per_mac(frequency_hz)
        return macs * self.power_mw

    def gflops_under_area(
        self, area_mm2: float, frequency_hz: float = 400e6, whole_macs: bool = False
    ) -> float:
        """Peak GFLOPS achievable within an area budget (§4.2's 29.2 vs 50)."""
        if area_mm2 < 0:
            raise ConfigurationError("area budget must be non-negative")
        macs = area_mm2 / self.area_mm2
        if whole_macs:
            macs = math.floor(macs)
        return macs * self.gflops_per_mac(frequency_hz)


@dataclass(frozen=True)
class AcceleratorAreaModel:
    """Whole-accelerator area/power (Table 4) for a chosen FP32 design."""

    fp32_design: MacDesign = MacDesign.ALIGNMENT_FREE
    fp32_macs: int = 64

    @property
    def fp32_area_mm2(self) -> float:
        return MacCircuitModel(self.fp32_design).area_mm2 * self.fp32_macs

    @property
    def fp32_power_mw(self) -> float:
        return MacCircuitModel(self.fp32_design).power_mw * self.fp32_macs

    @property
    def total_area_mm2(self) -> float:
        return (
            self.fp32_area_mm2
            + INT4_ARRAY_AREA_MM2
            + COMPARATOR_AREA_MM2
            + SCHEDULER_AREA_MM2
        )

    @property
    def total_power_mw(self) -> float:
        return (
            self.fp32_power_mw
            + INT4_ARRAY_POWER_MW
            + COMPARATOR_POWER_MW
            + SCHEDULER_POWER_MW
        )

    def breakdown(self) -> Dict[str, Dict[str, float]]:
        """Table 4 rows: per-block area (mm²) and power (mW)."""
        return {
            "FP32 MAC": {"area_mm2": self.fp32_area_mm2, "power_mw": self.fp32_power_mw},
            "INT4 MAC": {
                "area_mm2": INT4_ARRAY_AREA_MM2,
                "power_mw": INT4_ARRAY_POWER_MW,
            },
            "Comparator": {
                "area_mm2": COMPARATOR_AREA_MM2,
                "power_mw": COMPARATOR_POWER_MW,
            },
            "Scheduler": {
                "area_mm2": SCHEDULER_AREA_MM2,
                "power_mw": SCHEDULER_POWER_MW,
            },
        }

    def fits_budget(self, budget_mm2: float = 0.21) -> bool:
        """The §3.3 area-budget guideline: one Cortex-R5 at 28 nm."""
        return self.total_area_mm2 <= budget_mm2


def required_fp32_gflops(
    internal_bandwidth: float, batch_size: float, bytes_per_element: int = 4
) -> float:
    """GFLOPS needed to consume the flash stream with no compute stall.

    Each fetched weight element (``bytes_per_element`` bytes) is multiplied
    and accumulated against ``batch_size`` input vectors, so the compute
    intensity is ``2 * batch / bytes_per_element`` FLOP/byte.  For the
    paper's LSTM-W33K figure (34.8 GFLOPS at 8 GB/s internal bandwidth) the
    implied effective batch is ~8.7 queries.
    """
    if internal_bandwidth <= 0 or batch_size <= 0:
        raise ConfigurationError("bandwidth and batch size must be positive")
    flops_per_byte = 2.0 * batch_size / bytes_per_element
    return internal_bandwidth * flops_per_byte / 1e9
