"""On-flash serialization of CFP32 vectors (§4.2's storage story, concretely).

CFP32's selling point is that a pre-aligned vector still costs 4 bytes per
element: the 8 bits FP32 spent on a per-element exponent become the hidden
one + 7 compensation bits of a 31-bit mantissa, and one shared exponent byte
rides along per vector.  This module implements that exact wire format:

* per element, one little-endian ``uint32``: bit 31 = sign, bits 30..0 =
  magnitude of the shifted mantissa;
* per vector, a 4-byte header: shared exponent (1 byte) + element count
  (3 bytes, little-endian) — headers pack page-alignment-friendly.

``serialize_vector``/``deserialize_vector`` round-trip exactly;
``vectors_to_pages`` packs a weight matrix's rows into 4 KiB flash pages the
way the placement layer assumes (a D=1023-element vector plus header fills
one page exactly; D=1024 spills 4 bytes into a second page, which is why
Table 3's D=1024 benchmarks store one vector per page with the header in
the page's spare area — modeled here as ``spare_header=True``).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..errors import FormatError
from .format import STORED_MANTISSA_BITS, CFP32Vector

_MAGNITUDE_MASK = (1 << STORED_MANTISSA_BITS) - 1  # 31 bits
_SIGN_BIT = 1 << 31
_MAX_ELEMENTS = (1 << 24) - 1


def serialize_vector(vector: CFP32Vector) -> bytes:
    """CFP32 wire format: 4-byte header + 4 bytes per element."""
    n = len(vector)
    if n > _MAX_ELEMENTS:
        raise FormatError(f"vector of {n} elements exceeds 24-bit length field")
    magnitudes = np.abs(vector.mantissas).astype(np.uint32)
    if (magnitudes > _MAGNITUDE_MASK).any():
        raise FormatError("mantissa magnitude exceeds 31 bits")
    words = magnitudes.copy()
    words[vector.mantissas < 0] |= _SIGN_BIT
    header = bytes([vector.shared_exponent]) + int(n).to_bytes(3, "little")
    return header + words.astype("<u4").tobytes()


def deserialize_vector(payload: bytes) -> CFP32Vector:
    """Inverse of :func:`serialize_vector` (dropped-bit info is not stored)."""
    if len(payload) < 4:
        raise FormatError("payload shorter than the CFP32 header")
    shared_exponent = payload[0]
    count = int.from_bytes(payload[1:4], "little")
    expected = 4 + 4 * count
    if len(payload) < expected:
        raise FormatError(
            f"payload holds {len(payload)} bytes, header promises {expected}"
        )
    words = np.frombuffer(payload[4:expected], dtype="<u4")
    magnitudes = (words & _MAGNITUDE_MASK).astype(np.int64)
    signs = (words & _SIGN_BIT) != 0
    mantissas = np.where(signs, -magnitudes, magnitudes)
    return CFP32Vector(
        shared_exponent=int(shared_exponent),
        mantissas=mantissas,
        dropped_bits=np.zeros(count, dtype=np.int64),
    )


def serialized_size(num_elements: int) -> int:
    """Bytes one serialized vector occupies."""
    if num_elements < 0:
        raise FormatError("negative element count")
    return 4 + 4 * num_elements


def vectors_to_pages(
    vectors: List[CFP32Vector],
    page_size: int = 4096,
    spare_header: bool = False,
) -> Tuple[List[bytes], List[Tuple[int, int]]]:
    """Pack serialized vectors into flash pages.

    Returns ``(pages, locations)`` where ``locations[i] = (page_index,
    offset)`` for vector *i*.  Vectors never straddle pages in-body: a
    vector that doesn't fit the current page's remainder starts a new page
    (matching :class:`repro.layout.placement.WeightPlacement`'s packing
    rule).  With ``spare_header=True`` the 4-byte header is accounted to
    the page's out-of-band spare area (real NAND pages carry 64-224 spare
    bytes), letting a 4096-byte body hold exactly one 1024-element vector.
    """
    if page_size <= 0:
        raise FormatError("page_size must be positive")
    pages: List[bytearray] = []
    locations: List[Tuple[int, int]] = []
    current = bytearray()
    for vector in vectors:
        blob = serialize_vector(vector)
        body = blob[4:] if spare_header else blob
        if len(body) > page_size:
            # Multi-page vector: flush and split across dedicated pages.
            if current:
                pages.append(current)
                current = bytearray()
            locations.append((len(pages), 0))
            for start in range(0, len(body), page_size):
                chunk = bytearray(body[start : start + page_size])
                pages.append(chunk)
            continue
        if len(current) + len(body) > page_size:
            pages.append(current)
            current = bytearray()
        locations.append((len(pages), len(current)))
        current.extend(body)
    if current:
        pages.append(current)
    return [bytes(p.ljust(page_size, b"\0")) for p in pages], locations
