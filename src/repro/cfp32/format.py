"""CFP32: vector-wise pre-aligned floating point with compensation bits.

The host finds each vector's maximum biased exponent ``E_max``, then right-
shifts every element's 24-bit normalized mantissa (hidden one included) by
``E_max - E``.  The shifted mantissa is stored in 31 bits: the original
23 mantissa bits, the hidden one, and 7 *compensation* bits that catch the
low-order bits a shift of up to 7 would otherwise drop — these 7 bits plus
the hidden-one position reuse the 8 bits FP32 spent on the per-element
exponent.  One shared 8-bit exponent per vector is stored out of band.

Because deep-learning activations/weights have strong value locality, the
paper measures that with 7 compensation bits more than 95% of values lose no
mantissa information; :func:`lossless_fraction` measures the same statistic
for any array.

Layout recap (per element, 32 bits total): 1 sign bit + 31-bit mantissa
``M = mantissa24 << 7 >> (E_max - E)`` — so an element at ``E == E_max`` has
its hidden one at bit 30.  Value reconstruction:
``x = (-1)^sign * M * 2^(E_max - BIAS - 23 - COMPENSATION_BITS)``.

Zeros encode as ``M = 0``.  Subnormal inputs flush to zero (deep-learning
tensors never depend on subnormals); infinities/NaNs are rejected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..errors import FormatError

COMPENSATION_BITS = 7
MANTISSA_BITS = 23
BIAS = 127
# Total stored mantissa width: hidden one + 23 fraction + 7 compensation.
STORED_MANTISSA_BITS = 1 + MANTISSA_BITS + COMPENSATION_BITS  # 31


def _decompose(
    values: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Split float32 array into (sign, biased exponent, 24-bit mantissa).

    Subnormals flush to zero.  Returns int32 arrays.
    """
    values = np.ascontiguousarray(values, dtype=np.float32)
    if not np.isfinite(values).all():
        raise FormatError("CFP32 cannot encode inf/NaN")
    bits = values.view(np.int32)
    sign = (bits >> 31) & 1
    exponent = (bits >> 23) & 0xFF
    fraction = bits & 0x7FFFFF
    mantissa = np.where(exponent > 0, fraction | (1 << 23), 0)
    exponent = np.where(exponent > 0, exponent, 0)
    # Flush subnormals (exponent == 0, fraction != 0) to zero.
    return sign.astype(np.int64), exponent.astype(np.int64), mantissa.astype(np.int64)


@dataclass(frozen=True)
class CFP32Vector:
    """One pre-aligned vector: shared exponent + signed 31-bit mantissas."""

    shared_exponent: int  # biased E_max, 0..255
    mantissas: np.ndarray  # (N,) int64, signed, |M| < 2**31
    dropped_bits: np.ndarray  # (N,) int64, mantissa bits lost to shifting

    def __post_init__(self) -> None:
        if not (0 <= self.shared_exponent <= 255):
            raise FormatError(f"shared exponent {self.shared_exponent} outside uint8")
        if np.abs(self.mantissas).max(initial=0) >= (1 << STORED_MANTISSA_BITS):
            raise FormatError("mantissa exceeds 31-bit storage")

    def __len__(self) -> int:
        return len(self.mantissas)

    @property
    def storage_bytes(self) -> int:
        """On-device bytes: 4 per element plus the one shared exponent byte."""
        return 4 * len(self.mantissas) + 1

    def is_lossless(self) -> np.ndarray:
        """Boolean mask of elements that lost no mantissa information."""
        return self.dropped_bits == 0


def prealign(values: np.ndarray) -> CFP32Vector:
    """Host-side pre-alignment of one float32 vector into CFP32 (§4.2).

    Mantissas are truncated (not rounded) on right shift, matching the
    hardware datapath the paper describes.
    """
    values = np.atleast_1d(np.asarray(values, dtype=np.float32))
    if values.ndim != 1:
        raise FormatError("prealign expects a 1-D vector")
    sign, exponent, mantissa = _decompose(values)
    nonzero = mantissa != 0
    if not nonzero.any():
        return CFP32Vector(
            shared_exponent=0,
            mantissas=np.zeros(len(values), dtype=np.int64),
            dropped_bits=np.zeros(len(values), dtype=np.int64),
        )
    e_max = int(exponent[nonzero].max())
    offset = e_max - exponent
    shifted_up = mantissa << COMPENSATION_BITS
    # Shifts >= 63 would be UB on int64; values that far below E_max are 0.
    safe_offset = np.minimum(offset, 62)
    aligned = shifted_up >> safe_offset
    aligned = np.where(nonzero, aligned, 0)
    # Count dropped (nonzero) low bits: bits of shifted_up below the shift.
    remainder = shifted_up - (aligned << safe_offset)
    dropped = np.zeros(len(values), dtype=np.int64)
    nz_rem = remainder > 0
    if nz_rem.any():
        # Number of significant bits in the remainder that were lost.
        dropped[nz_rem] = np.floor(np.log2(remainder[nz_rem])).astype(np.int64) + 1
    signed = np.where(sign == 1, -aligned, aligned)
    return CFP32Vector(
        shared_exponent=e_max,
        mantissas=signed.astype(np.int64),
        dropped_bits=np.where(nonzero, dropped, 0),
    )


def decode(vector: CFP32Vector) -> np.ndarray:
    """Reconstruct float64 values from a CFP32 vector."""
    scale = 2.0 ** (
        vector.shared_exponent - BIAS - MANTISSA_BITS - COMPENSATION_BITS
    )
    return vector.mantissas.astype(np.float64) * scale


def lossless_fraction(values: np.ndarray) -> float:
    """Fraction of elements encoded with zero mantissa loss (§4.2 claim).

    The paper measures >95% on real model tensors; synthetic workloads with
    deep-learning-like value locality reproduce this.
    """
    values = np.atleast_2d(np.asarray(values, dtype=np.float32))
    total = 0
    lossless = 0
    for row in values:
        encoded = prealign(row)
        total += len(row)
        lossless += int(encoded.is_lossless().sum())
    if total == 0:
        return 1.0
    return lossless / total


def max_relative_error(values: np.ndarray) -> float:
    """Worst-case relative reconstruction error over rows of ``values``."""
    values = np.atleast_2d(np.asarray(values, dtype=np.float32))
    worst = 0.0
    for row in values:
        decoded = decode(prealign(row))
        reference = row.astype(np.float64)
        mask = reference != 0
        if not mask.any():
            continue
        err = np.abs(decoded[mask] - reference[mask]) / np.abs(reference[mask])
        worst = max(worst, float(err.max()))
    return worst
