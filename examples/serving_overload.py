#!/usr/bin/env python3
"""Serving under overload: what users see when load exceeds capacity.

The paper's timing models price one batch; `repro.serve` stacks admission
control, deadline batching at the roofline knee, hotness-weighted replica
routing, and a graceful-degradation ladder on top of them.  This example
sweeps offered load from half the saturating rate to 4x it and shows the
trade the layer makes: past saturation it degrades fidelity first, then
sheds *explicitly* — and the p99 of admitted requests never leaves the SLO.

Run:  python examples/serving_overload.py
"""

from repro.analysis.reporting import render_table
from repro.serve import (
    AffineServiceModel,
    ServingConfig,
    build_serving_stack,
    saturating_rate,
)
from repro.workloads.streams import poisson_arrivals

SLO_S = 0.02  # 20 ms latency budget


def main() -> None:
    # A knee-8 affine service model (0.2 ms setup + 0.1 ms/query); swap in
    # AffineServiceModel.from_batch_points(BatchingAnalyzer(...).sweep(...))
    # to calibrate from a real Table 3 benchmark like the CLI does.
    service = AffineServiceModel(
        base=2e-4, per_query=1e-4, knee=8, candidate_fraction=0.7
    )
    config = ServingConfig(slo=SLO_S, shards=2, replicas=2)
    capacity = saturating_rate(service, config)
    print(f"=== Serving layer: 2 shards x 2 replicas, SLO {SLO_S * 1e3:.0f} ms,"
          f" saturates at {capacity:,.0f} q/s ===\n")

    rows = []
    for multiplier in (0.5, 1.0, 2.0, 4.0):
        simulator = build_serving_stack(service, config)
        rate = multiplier * capacity
        arrivals = poisson_arrivals(rate, num_queries=2000, seed=0)
        report = simulator.run(arrivals)
        rows.append([
            f"{multiplier:.1f}x",
            f"{rate:,.0f}",
            f"{report.goodput:,.0f}",
            f"{report.shed_rate:.1%}",
            f"{report.p50 * 1e3:.2f} ms",
            f"{report.p99 * 1e3:.2f} ms",
            f"{report.max_degrade_level}",
        ])
    print(render_table(
        ["load", "offered q/s", "goodput q/s", "shed", "p50", "p99", "degrade"],
        rows,
    ))
    print(
        "\nBelow saturation nothing is shed and the ladder stays at full"
        " fidelity.  Past it, queue pressure first walks the degradation"
        "\nladder (smaller candidate budget -> faster batches), then the"
        " SLO-derived depth bound sheds the excess explicitly — so the p99"
        "\nof *admitted* requests stays inside the SLO instead of the whole"
        " queue collapsing.  Same seed, same numbers, every run."
    )


if __name__ == "__main__":
    main()
