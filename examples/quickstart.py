#!/usr/bin/env python3
"""Quickstart: run extreme classification on a simulated ECSSD.

Builds a synthetic 8192-label classifier, deploys it through the Table 1
API (4-bit screener weights into the device DRAM, CFP32 weights into flash
under learned interleaving), runs a batch of queries, and prints the
predictions alongside the device-side timing report.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import ECSSD
from repro.analysis.reporting import format_seconds
from repro.workloads.synthetic import make_workload


def main() -> None:
    print("Generating a synthetic 8192-label / 256-dim classifier ...")
    workload = make_workload(
        num_labels=8192, hidden_dim=256, num_queries=96, seed=42
    )
    calibration = workload.features[:64]
    queries = workload.features[64:72]

    device = ECSSD()  # full ECSSD: alignment-free MAC + hetero + learned
    device.ecssd_enable()
    print("Deploying weights (calibrating the screening threshold) ...")
    device.weight_deploy(workload.weights, train_features=calibration)

    print("Sending a batch of 8 queries ...")
    device.int4_input_send(queries)
    device.cfp32_input_send(device.pre_align(queries))

    screen = device.int4_screen()
    device.cfp32_classify()
    labels = device.get_results()

    print(f"\nScreening kept {screen.candidate_ratio():.1%} of labels as candidates")
    print("Top-5 predictions per query:")
    for q, row in enumerate(labels):
        print(f"  query {q}: {row.tolist()}")

    exact = queries @ workload.weights.T
    agreement = (labels[:, 0] == exact.argmax(axis=1)).mean()
    print(f"\nTop-1 agreement with exact full-precision classification: {agreement:.0%}")

    report = device.last_report
    assert report is not None
    print(
        f"Device-side batch latency: {format_seconds(report.scaled_total_time)}"
        f" ({format_seconds(report.time_per_query)}/query)"
    )
    print(
        "FP32 flash-channel bandwidth utilization:"
        f" {report.fp32_channel_utilization:.1%}"
    )


if __name__ == "__main__":
    main()
