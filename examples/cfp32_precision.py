#!/usr/bin/env python3
"""CFP32 precision study: pre-alignment, compensation bits, MAC accuracy (§4.2).

Shows the whole alignment-free story on real numbers:

1. pre-align a value-local vector and inspect the shared exponent and
   31-bit mantissas;
2. sweep the exponent spread of the input distribution and measure the
   fraction of losslessly-encoded elements (the paper's >95% claim);
3. run dot products through the bit-accurate alignment-free MAC and compare
   against IEEE FP64 references;
4. compare the three MAC circuits' area/power at iso-throughput (Fig. 9).

Run:  python examples/cfp32_precision.py
"""

import numpy as np

from repro.analysis.reporting import render_table
from repro.cfp32.circuits import MacCircuitModel, MacDesign
from repro.cfp32.format import decode, lossless_fraction, prealign
from repro.cfp32.mac import dot_cfp32, reference_dot


def inspect_format() -> None:
    print("=== CFP32 anatomy of one vector ===")
    vector = np.array([1.75, -0.875, 0.015625, 3.5], dtype=np.float32)
    encoded = prealign(vector)
    print(f"values:          {vector.tolist()}")
    print(f"shared exponent: {encoded.shared_exponent} (biased)")
    print(f"mantissas:       {encoded.mantissas.tolist()}")
    print(f"bits dropped:    {encoded.dropped_bits.tolist()}")
    print(f"decoded:         {decode(encoded).tolist()}")
    print()


def locality_sweep() -> None:
    print("=== Lossless fraction vs value locality (paper: >95% on real models) ===")
    rng = np.random.default_rng(0)
    rows = []
    for spread in (0.2, 0.35, 0.5, 1.0, 2.0, 4.0):
        data = (
            rng.normal(size=(64, 256)) * np.exp(rng.normal(0, spread, (64, 256)))
        ).astype(np.float32)
        rows.append([f"{spread:.2f}", f"{lossless_fraction(data):.1%}"])
    print(render_table(["exponent spread (lognormal sigma)", "lossless elements"], rows))
    print()


def mac_accuracy() -> None:
    print("=== Alignment-free MAC vs FP64 reference ===")
    rng = np.random.default_rng(1)
    rows = []
    for n in (16, 256, 1024):
        x = (rng.normal(size=n) * np.exp(rng.normal(0, 0.35, n))).astype(np.float32)
        w = (rng.normal(size=n) * np.exp(rng.normal(0, 0.35, n))).astype(np.float32)
        got, want = dot_cfp32(x, w), reference_dot(x, w)
        rel = abs(got - want) / max(abs(want), 1e-12)
        rows.append([n, f"{got:.8g}", f"{want:.8g}", f"{rel:.2e}"])
    print(render_table(["length", "CFP32 MAC", "FP64 reference", "rel. error"], rows))
    print()


def circuit_comparison() -> None:
    print("=== Fig. 9: MAC circuit area/power at iso-throughput ===")
    af = MacCircuitModel(MacDesign.ALIGNMENT_FREE)
    rows = []
    paper = {"naive": ("1.73x", "1.53x"), "sk_hynix": ("1.38x", "1.19x"),
             "alignment_free": ("1.00x", "1.00x")}
    for design in (MacDesign.NAIVE, MacDesign.SK_HYNIX, MacDesign.ALIGNMENT_FREE):
        m = MacCircuitModel(design)
        rows.append(
            [
                design.value,
                f"{m.area_units / af.area_units:.2f}x",
                paper[design.value][0],
                f"{m.power_units / af.power_units:.2f}x",
                paper[design.value][1],
            ]
        )
    print(render_table(
        ["design", "area (ours)", "area (paper)", "power (ours)", "power (paper)"],
        rows,
    ))
    naive = MacCircuitModel(MacDesign.NAIVE)
    print(f"\nAlignment logic share of the naive MAC:"
          f" {naive.alignment_area_fraction():.1%} (paper: 37.7%)")
    print(f"Naive GFLOPS under the 0.139 mm^2 budget:"
          f" {naive.gflops_under_area(0.139):.1f} (paper: 29.2)")


def main() -> None:
    inspect_format()
    locality_sweep()
    mac_accuracy()
    circuit_comparison()


if __name__ == "__main__":
    main()
