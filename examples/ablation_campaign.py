#!/usr/bin/env python3
"""An ablation campaign end to end: declare axes, run the matrix, rank.

`repro.ablate` replaces hand-rolled ablation loops with one engine: a
`CampaignSpec` declares component axes with a champion level each, the
engine expands a deterministic run matrix (cell IDs are run IDs from the
provenance registry), executes every cell through a named runner, and
scores each component's importance against the champion.

This example builds a small custom campaign on the serving plane —
admission policy x degradation ladder at 1.3x the saturating rate — runs
it twice to show resume (the second run executes zero cells), and prints
the ranked importance report.  Swap the spec for a built-in
(`repro.ablate.components_campaign()` etc.) to reproduce the shipped
studies; `python -m repro ablate run --campaign components` is the same
path from the CLI.

Run:  python examples/ablation_campaign.py
"""

import tempfile

from repro.ablate import Axis, CampaignSpec, run_campaign


def main() -> None:
    spec = CampaignSpec(
        name="example-serving",
        runner="serve",
        mode="factorial",
        seed=7,
        axes=(
            Axis("admission", ("token-bucket", "depth"), "token-bucket"),
            Axis("degrade", ("on", "off"), "on"),
        ),
        params={
            "slo_s": 0.020,
            "shards": 2,
            "replicas": 1,
            "rate_multiplier": 1.3,
            "num_queries": 1200,
            "sample_tiles": 4,
        },
    )

    print(f"=== Campaign {spec.name!r}: {len(spec.axes)} axes,"
          f" mode {spec.mode!r}, runner {spec.runner!r} ===\n")

    with tempfile.TemporaryDirectory() as run_dir:
        result = run_campaign(spec, run_dir=run_dir)
        print(f"executed {len(result.executed)} cells"
              f" (campaign id {result.campaign_id[:12]}…)\n")

        # The matrix, cell by cell: the champion plus every combination.
        for cell in result.matrix.cells:
            tag = "champion" if cell.is_champion else "        "
            assignment = ", ".join(
                f"{axis}={level}" for axis, level in sorted(cell.assignment.items())
            )
            metrics = result.results[cell.cell_id]
            print(f"  [{tag}] {cell.cell_id[:12]}…  {assignment}"
                  f"  goodput={metrics['goodput_qps']:8.1f} q/s"
                  f"  p99={metrics['p99_ms']:6.2f} ms")

        # Re-running the same spec in the same registry resumes: every
        # cell's manifest already exists, so nothing re-executes.
        again = run_campaign(spec, run_dir=run_dir)
        print(f"\nre-run: executed {len(again.executed)},"
              f" resumed {len(again.resumed)} — and the report is"
              f" byte-identical: {again.report.to_json() == result.report.to_json()}\n")

        print(result.report.render_markdown())


if __name__ == "__main__":
    main()
