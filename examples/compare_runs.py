#!/usr/bin/env python3
"""Run provenance end to end: register, re-run, compare, and diverge.

Three seeded serving runs go through the run registry
(`repro.obs.runs`): two with the same seed, one perturbed.  The same-seed
pair derives the *same* run ID and a digest track that matches
step-for-step; the perturbed run is flagged at the first mismatched state
digest with its sim-time and the state keys that changed.  Everything is
a pure function of the seeds — run this twice and every ID, digest, and
metric is identical.

Run:  python examples/compare_runs.py
"""

import tempfile

from repro.obs import (
    DigestRecorder,
    RunManifest,
    RunRegistry,
    compare_runs,
    diverge_runs,
)
from repro.serve import (
    AffineServiceModel,
    ServingConfig,
    build_serving_stack,
    saturating_rate,
)
from repro.workloads.streams import poisson_arrivals

NUM_REQUESTS = 2_000
SLO_S = 0.02


def run_serving(seed: int) -> RunManifest:
    """One seeded serving run, digested every 64 events."""
    service = AffineServiceModel(
        base=2.0e-4, per_query=2.0e-5, knee=32, candidate_fraction=0.7
    )
    config = ServingConfig(slo=SLO_S, shards=2, replicas=1)
    recorder = DigestRecorder(interval=64, label="serve")
    simulator = build_serving_stack(service, config, digest_recorder=recorder)
    rate = 1.2 * saturating_rate(service, config)
    report = simulator.run(poisson_arrivals(rate, NUM_REQUESTS, seed=seed))
    return RunManifest.build(
        label="example-serve",
        seed=seed,
        config={"slo_s": SLO_S, "shards": 2, "rate_qps": rate},
        workload={"kind": "poisson", "num_queries": NUM_REQUESTS},
        metrics={
            "goodput_qps": report.goodput,
            "shed_rate": report.shed_rate,
            "p99_ms": (report.p99 or 0.0) * 1e3,
        },
        digests=recorder.entries,
    )


def main() -> None:
    print("=== 1. Three runs into a registry: seeds 7, 7, 9 ===")
    with tempfile.TemporaryDirectory() as root:
        registry = RunRegistry(root)
        first = run_serving(seed=7)
        replay = run_serving(seed=7)
        perturbed = run_serving(seed=9)
        for manifest in (first, replay, perturbed):
            registry.register(manifest)
            print(f"  {manifest.summary_line()}")
        print(f"\nregistry holds {len(registry.run_ids())} run(s): the"
              " identical replay re-derived the SAME id and overwrote"
              " itself (registration is idempotent).")
        assert first.run_id == replay.run_id
        assert first.run_id != perturbed.run_id

        print("\n=== 2. Replay vs original: digest tracks must agree ===")
        report = diverge_runs(first, replay)
        print(report.render())
        assert not report.diverged

        print("\n=== 3. Perturbed seed: flagged at the first bad digest ===")
        report = diverge_runs(first, perturbed)
        print(report.render())
        assert report.diverged

        print("\n=== 4. Metric comparison under perf-diff bands ===")
        comparison = compare_runs(first, perturbed)
        print(comparison.render(show_ok=True))
        print(
            "\nThe CLI wraps this exact loop:  repro serve --run-dir runs"
            "  then  repro runs {list,show,compare,diverge}."
        )


if __name__ == "__main__":
    main()
