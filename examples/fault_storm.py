#!/usr/bin/env python3
"""A fault storm, step by step: what an aging ECSSD does when NAND misbehaves.

`repro.faults` injects a deterministic worst-credible day — wear- and
retention-driven RBER climbing the tiered ECC ladder, channels stuck
offline, DRAM bit flips corrupting 4-bit screener rows, and flash commands
timing out — then shows the co-design absorbing it: reads get slower (never
wedged), uncorrectable weight pages become dropped candidates (an accuracy
cost, not a crash), and the scrub loop refreshes the worst blocks back
through wear leveling.  Everything is a pure function of the seed: run this
twice and every number is identical.

Run:  python examples/fault_storm.py
"""

import numpy as np

from repro.analysis.metrics import topk_retention
from repro.analysis.reporting import render_table
from repro.config import ECSSDConfig, FlashConfig
from repro.core.ecssd import ECSSDevice
from repro.faults import (
    FaultConfig,
    FaultInjector,
    ScrubConfig,
    ScrubPolicy,
    installed,
)
from repro.ssd.device import SSDDevice
from repro.units import us
from repro.workloads.synthetic import make_workload

NUM_LABELS = 1024
NUM_QUERIES = 8
SEED = 0


def storm_config(rber_scale: float) -> FaultConfig:
    """An aged device (3k P/E, six months of retention) plus every fault class."""
    return FaultConfig(
        seed=SEED,
        rber_scale=rber_scale,
        mean_pe_cycles=3000.0,
        deployment_age=180.0 * 24.0 * 3600.0,
        offline_windows=4,
        offline_duration=us(400.0),
        dram_flips=8,
        timeout_rate=0.05,
        horizon=0.05,
    )


def main() -> None:
    config = ECSSDConfig()
    workload = make_workload(
        num_labels=NUM_LABELS, hidden_dim=256, num_queries=NUM_QUERIES + 16,
        seed=SEED,
    )
    queries = workload.features[16:]

    def fresh_device() -> ECSSDevice:
        device = ECSSDevice(config)
        device.deploy_model(
            workload.weights, train_features=workload.features[:16], seed=SEED
        )
        return device

    print("=== 1. Clean reference run (no injector installed) ===")
    clean_stats, clean_report = fresh_device().run_inference(queries, top_k=5)
    print(f"batch latency {clean_report.scaled_total_time * 1e3:.3f} ms\n")

    print("=== 2. The same queries through an escalating storm ===")
    rows = []
    for scale in (1.0, 5.0, 10.0):
        injector = FaultInjector(storm_config(scale), channels=config.flash.channels)
        with installed(injector):
            stats, report = fresh_device().run_inference(queries, top_k=5)
        retention = topk_retention(clean_stats.result.top_labels,
                                   stats.result.top_labels)
        dropped = np.union1d(
            injector.unreadable_labels(NUM_LABELS),
            injector.flipped_labels(NUM_LABELS),
        )
        rows.append([
            f"{scale:g}x",
            f"{retention:.1%}",
            f"{report.scaled_total_time / clean_report.scaled_total_time:.2f}x",
            int(dropped.size),
            f"{injector.page_read_surcharge() * 1e6:.1f} us",
        ])
    print(render_table(
        ["rber", "top-k retention", "latency vs clean",
         "labels dropped", "ecc surcharge/page"],
        rows,
    ))

    print("\n=== 3. Event-driven view: a small SSD under the 10x storm ===")
    small = ECSSDConfig(
        flash=FlashConfig(
            channels=2,
            packages_per_channel=1,
            dies_per_package=2,
            planes_per_die=1,
            blocks_per_plane=8,
            pages_per_block=8,
        )
    )
    injector = FaultInjector(storm_config(10.0), channels=small.flash.channels)
    with installed(injector):
        ssd = SSDDevice(small)
        lpas = list(range(64))
        ssd.host_write(lpas)
        done = ssd.host_read(lpas)
        ssd.fetch_pages([ssd.ftl.lookup(lpa) for lpa in lpas], start=done)
        injector.check_conservation()
        # Fast-forward four years of retention: the cold blocks drift far
        # enough up the RBER surface that scrub must refresh them.
        scrub = ScrubPolicy(ssd.ftl, injector, ScrubConfig())
        report = scrub.scan_and_refresh(now=done + 4 * 365.0 * 24.0 * 3600.0)
    summary = injector.summary()
    print(f"ECC tiers for {summary['reads_attempted']} reads:"
          f" {summary['tier_counts']}")
    print(f"timeouts injected {summary['timeouts_injected']},"
          f" retries {summary['retries_performed']},"
          f" offline stalls {summary['offline_stalls']}")
    print(f"scrub: scanned {report.scanned} blocks,"
          f" refreshed {report.refreshed},"
          f" migrated {report.pages_migrated} pages")
    print(
        "\nThe ladder got slower, never stuck: every read landed in exactly"
        " one ECC tier (the ledger balances), timed-out commands"
        "\nretried with bounded backoff, and the worst blocks were"
        " refreshed back through the wear-leveling heap.  Re-run this"
        "\nscript: every number above is bit-identical."
    )


if __name__ == "__main__":
    main()
