#!/usr/bin/env python3
"""Where does a query's time go?  Profiling one instrumented inference.

`repro profile` answers this from the CLI; this example does the same
thing from Python so the pieces are visible: record a run under
`obs.configure(...)`, hand the spans to `profile_trace`, and read the
critical-path attribution — which resource (DRAM, flash, the INT4/FP32
accelerators) bound each tile window, how balanced the flash channels
were (§5), and how much the INT4 weight stream overlapped FP32 candidate
fetches (§4.3).  The profiler is pure post-processing: it never touches
the simulated timeline, and the same seed yields a byte-identical report.

Run:  python examples/profile_query.py
"""

from repro import ECSSD, obs
from repro.obs import profile_trace
from repro.workloads.synthetic import make_workload


def main() -> None:
    workload = make_workload(
        num_labels=4096, hidden_dim=256, num_queries=48, seed=42
    )

    # Record one deploy + screen under the observability session.  With no
    # session installed these same calls record nothing and cost nothing.
    session = obs.configure(None)
    try:
        device = ECSSD()
        device.ecssd_enable()
        device.weight_deploy(
            workload.weights, train_features=workload.features[:32]
        )
        queries = workload.features[32:40]
        device.int4_input_send(queries)
        device.cfp32_input_send(device.pre_align(queries))
        device.int4_screen()
    finally:
        session.uninstall()

    report = profile_trace(session.tracer.spans, session.registry)
    print("=== Critical-path profile: 4096 labels, 8 queries ===\n")
    print(report.render())

    # The same data, programmatically.
    window = report.end_to_end_s
    print(f"\nend-to-end window: {window * 1e6:,.1f} us"
          f" across {len(report.tiles)} tiles"
          f" (attribution error {report.attribution_error:.3%})")

    binding = max(report.attributed_s.items(), key=lambda kv: kv[1])
    print(f"binding resource: {binding[0]}"
          f" ({binding[1] / window:.1%} of the window)")

    # Per-channel busy-time imbalance needs the flash-command replay the
    # `repro profile` CLI performs; from the library the registry still
    # tells us how many pages each channel moved.
    pages = report.channel_balance.pages
    if pages:
        mean = sum(pages.values()) / len(pages)
        print(f"pages per channel: max {max(pages.values())} vs mean"
              f" {mean:.1f} over {len(pages)} channels"
              f" ({max(pages.values()) / mean:.3f}x imbalance)")

    stats = report.interference
    print(f"INT4/FP32 transfer overlap: {stats.overlap_fraction:.1%}"
          f" of {stats.fp32_fetch_s * 1e6:,.1f} us of FP32 fetch")

    # The binding chain itself, tile by tile: each segment is the span that
    # ended last over that slice of the window.
    segments = report.critical_path()
    print(f"\ncritical path: {len(segments)} segments; first three:")
    for seg in segments[:3]:
        print(f"  {seg.start * 1e6:>10,.1f} us  {seg.resource:<8}"
              f"  {seg.span}")


if __name__ == "__main__":
    main()
