#!/usr/bin/env python3
"""Interleaving study: sequential vs uniform vs learned (paper §5, Figs 11-12).

Deploys the GNMT-E32K benchmark under each of the three storing strategies,
prints one tile's per-channel access pattern (Fig. 11) and the end-to-end
performance comparison (Fig. 12), and shows the hot-degree machinery: raw
|INT4|-sum grading, then fine-tuning on a training trace.

Run:  python examples/interleaving_study.py
"""

import numpy as np

from repro.analysis import experiments as exp
from repro.analysis.reporting import format_ratio, format_seconds, render_table
from repro.core.ecssd import ECSSDevice
from repro.core.pipeline import PipelineFeatures
from repro.workloads.benchmarks import get_benchmark


def access_pattern_study() -> None:
    print("=== Fig. 11: one GNMT-E32K tile, 10% candidate ratio ===")
    uniform, learned = exp.fig11_access_pattern()
    channels = len(uniform.pages_per_channel)
    rows = []
    for c in range(channels):
        rows.append(
            [f"ch{c}", int(uniform.pages_per_channel[c]), int(learned.pages_per_channel[c])]
        )
    rows.append(["balance (mean/max)", f"{uniform.balance:.2f}", f"{learned.balance:.2f}"])
    print(render_table(["channel", "uniform pages", "learned pages"], rows))
    print()


def performance_study() -> None:
    print("=== Fig. 12: strategy comparison across four benchmarks ===")
    results = exp.fig12_interleaving(queries=32, sample_tiles=10)
    rows = []
    for r in results:
        rows.append(
            [
                r.benchmark,
                format_seconds(r.times["sequential"]),
                format_seconds(r.times["uniform"]),
                format_seconds(r.times["learned"]),
                format_ratio(r.speedup("uniform", "learned")),
                format_ratio(r.speedup("sequential", "learned")),
            ]
        )
    print(
        render_table(
            ["benchmark", "sequential", "uniform", "learned",
             "learned/uniform", "learned/sequential"],
            rows,
        )
    )
    lu = np.mean([r.speedup("uniform", "learned") for r in results])
    ls = np.mean([r.speedup("sequential", "learned") for r in results])
    print(f"\nAverage: learned beats uniform {lu:.2f}x (paper: 1.43x),")
    print(f"         learned beats sequential {ls:.2f}x (paper: 7.57x)\n")


def utilization_study() -> None:
    print("=== Channel utilization per strategy (GNMT-E32K) ===")
    spec = get_benchmark("GNMT-E32K")
    rows = []
    for strategy in ("sequential", "uniform", "learned"):
        device = ECSSDevice(features=PipelineFeatures.full(), interleaving=strategy)
        device.deploy_spec(spec)
        report = device.run_trace(
            exp._generator(spec), queries=32, sample_tiles=10
        )
        rows.append(
            [strategy, f"{report.fp32_channel_utilization:.1%}",
             format_seconds(report.scaled_total_time)]
        )
    print(render_table(["strategy", "fp32 channel utilization", "time"], rows))


def main() -> None:
    access_pattern_study()
    performance_study()
    utilization_study()


if __name__ == "__main__":
    main()
