#!/usr/bin/env python3
"""Architecture comparison: ECSSD vs eight baselines (paper §6.7, Fig. 13).

Times the three large-scale extreme-classification benchmarks on every
modeled architecture — CPU, GenStore-style in-storage, SmartSSD near-storage
(3 and 6 GB/s switches), each with and without the approximate screening
algorithm — and prints the slowdown table next to the paper's published
factors, plus the §7.2/§7.3 GPU and ENMC efficiency discussions.

Run:  python examples/architecture_comparison.py
"""

from repro.analysis import experiments as exp
from repro.analysis.reporting import format_seconds, render_table
from repro.baselines.gpu_enmc import EnmcComparison, GpuComparison
from repro.workloads.benchmarks import LARGE_SCALE, get_benchmark


def end_to_end() -> None:
    print("=== Fig. 13: end-to-end comparison on S10M/S50M/S100M ===")
    results = exp.fig13_end_to_end(queries=8, sample_tiles=10)
    rows = []
    for r in results:
        rows.append(
            [
                r.architecture,
                *(format_seconds(r.per_benchmark_time[b]) for b in LARGE_SCALE),
                f"{r.mean_slowdown_vs_ecssd:.2f}x",
                "-" if r.paper_slowdown is None else f"{r.paper_slowdown:.2f}x",
            ]
        )
    print(
        render_table(
            ["architecture", *LARGE_SCALE, "slowdown (ours)", "slowdown (paper)"],
            rows,
        )
    )
    print()


def gpu_discussion() -> None:
    print("=== §7.2: GPU comparison (RTX 3090 class) ===")
    gpu = GpuComparison()
    spec = get_benchmark("XMLCNN-S100M")
    print(f"One RTX 3090 holds {gpu.gpu_memory_bytes / 2**30:.0f} GiB —"
          f" the S100M matrix needs {spec.fp32_matrix_bytes / 2**30:.0f} GiB.")
    print(f"GPUs needed to hold S100M entirely in device memory:"
          f" {gpu.gpus_needed(spec)} (paper: >= 18)")
    print(f"Single-GPU power vs ECSSD: {gpu.single_gpu_power_ratio():.0f}x (paper: 32x)")
    print(f"Fleet power vs ECSSD: {gpu.power_ratio_vs_ecssd(spec):.0f}x (paper: >= 573x)")
    print()


def enmc_discussion() -> None:
    print("=== §7.3: ENMC near-DRAM comparison ===")
    enmc = EnmcComparison()
    print(f"ENMC: {enmc.enmc_peak_gflops:.0f} GFLOPS peak,"
          f" {enmc.enmc_power_w:.0f} W, ${enmc.enmc_cost_usd:,.0f}")
    print(f"ECSSD energy efficiency advantage:"
          f" {enmc.energy_efficiency_ratio():.2f}x (paper: 1.19x)")
    print(f"ECSSD cost efficiency advantage:"
          f" {enmc.cost_efficiency_ratio():.2f}x (paper: 8.87x)")
    big = get_benchmark("XMLCNN-S100M").scaled(200_000_000, "S200M")
    print(f"S200M fits ENMC's 512 GB DRAM: {enmc.fits(big)} — ECSSD scales"
          " out instead (see §7.1).")


def scalability() -> None:
    print("\n=== §7.1: DRAM scalability and scale-out ===")
    rows = [
        [f"{p.dram_capacity_gib} GiB", f"{p.max_categories_millions:.0f}M",
         "-" if p.paper_max_millions is None else f"{p.paper_max_millions:.0f}M"]
        for p in exp.sec71_scalability()
    ]
    print(render_table(["DRAM", "max categories (ours)", "supported scenario (paper)"], rows))
    plan = exp.sec71_scale_out()
    print(f"\n500M categories -> {plan.devices_needed} ECSSDs"
          f" ({plan.int4_total_gib:.0f} GiB INT4, {plan.fp32_total_tib:.1f} TiB FP32)"
          " — paper: 5 devices.")


def main() -> None:
    end_to_end()
    gpu_discussion()
    enmc_discussion()
    scalability()


if __name__ == "__main__":
    main()
