#!/usr/bin/env python3
"""Where does fleet p99 live?  Per-request causal tracing, step by step.

Runs a faulted fleet serving run twice — once bare, once with the causal
collector installed — and shows the three properties the tracing layer is
built on:

1. **Zero overhead when disabled / observe-only when enabled**: both runs
   produce bit-identical latencies, so the attribution below describes
   exactly the run you would have had anyway.
2. **Conservation**: every request's stage durations (queue wait, failover,
   fan-out, slot wait, service, fault slowdown, result transfer, merge)
   telescope exactly to its end-to-end latency.
3. **Deterministic exemplars**: the K slowest requests and a seeded
   reservoir sample come out byte-identical at a fixed seed, and any of
   them exports its causal graph as a Chrome/Perfetto trace.

Run:  python examples/tail_attribution.py
"""

import json
import math

import numpy as np

from repro.cluster import ClusterConfig, build_cluster, cluster_saturating_rate
from repro.faults import ClusterFaultConfig
from repro.obs.causal import CausalCollector, installed, trace_to_chrome
from repro.serve import AffineServiceModel
from repro.workloads.streams import poisson_arrivals

NUM_REQUESTS = 20_000
SEED = 7

SERVICE = AffineServiceModel(base=5e-4, per_query=2e-5, knee=16)
CONFIG = ClusterConfig(
    data_nodes=8,
    service_nodes=4,
    shards=4,
    replicas=24,
    racks=2,
    slots_per_node=2,
    slo=0.05,
)


def run_fleet(collector=None):
    """One faulted fleet run just past saturation (queues form, tails stretch)."""
    rate = 1.1 * cluster_saturating_rate(SERVICE, CONFIG)
    arrivals = poisson_arrivals(rate, NUM_REQUESTS, seed=SEED)
    fault_config = ClusterFaultConfig.from_spec(
        "node-crash=2,partition=1,slow-node=2",
        seed=SEED,
        horizon=0.8 * float(arrivals[-1]),
    )
    simulator = build_cluster(
        SERVICE, CONFIG, seed=SEED, fault_config=fault_config
    )
    if collector is None:
        return simulator.run(arrivals)
    with installed(collector):
        return simulator.run(arrivals)


def main() -> None:
    # -- 1. tracing does not perturb the run --------------------------------
    bare = run_fleet()
    collector = CausalCollector(slowest_k=5, sample_size=8, seed=SEED)
    traced = run_fleet(collector)
    assert np.array_equal(bare.latencies, traced.latencies)
    print(
        f"traced run is bit-identical to the bare run "
        f"({traced.completed} completed, p99 {traced.p99 * 1e3:.1f} ms)\n"
    )

    # -- 2. the attribution report ------------------------------------------
    attribution = collector.report()
    print(attribution.render())

    # -- 3. conservation, checked by hand on the slowest request ------------
    slowest = attribution.slowest[0]
    stage_sum = math.fsum(seconds for _, seconds in slowest.stages)
    print(
        f"\nslowest request {slowest.request_id}: "
        f"latency {slowest.latency * 1e3:.3f} ms, "
        f"stage sum {stage_sum * 1e3:.3f} ms "
        f"(fault class: {slowest.fault_class})"
    )
    for name, seconds in slowest.stages:
        if seconds > 0.0:
            print(f"  {name:<16} {seconds * 1e3:9.3f} ms")

    # -- 4. export its causal graph for chrome://tracing / Perfetto ---------
    document = trace_to_chrome(slowest)
    with open("exemplar_trace.json", "w", encoding="utf-8") as fh:
        json.dump(document, fh, indent=2, sort_keys=True)
    print(
        f"\nwrote exemplar_trace.json "
        f"({len(document['traceEvents'])} events) — open at ui.perfetto.dev"
    )


if __name__ == "__main__":
    main()
