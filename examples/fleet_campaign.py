#!/usr/bin/env python3
"""A fleet failover campaign: crashes, a partition, and zero lost requests.

`repro.cluster` runs many service nodes and replicated data nodes as one
deterministic discrete-event simulation.  This example builds an
8-data-node / 2-service-node fleet, replays the same Poisson stream twice —
once on a healthy fleet, once under a seeded fault campaign (two node
crashes, a rack partition, two slow-node brownouts) — and shows what the
placement and failover machinery buy: every request still completes or is
shed explicitly, the analytic shard outage stays at zero because replicas
are rack-spread, and the failover timeline lists each park / redispatch /
unpark decision in event order.

Run:  python examples/fleet_campaign.py
"""

from repro.analysis.reporting import render_table
from repro.cluster import ClusterConfig, build_cluster, cluster_saturating_rate
from repro.faults import ClusterFaultConfig
from repro.serve import AffineServiceModel
from repro.workloads.streams import poisson_arrivals

SLO_S = 0.05  # 50 ms fleet latency budget
NUM_REQUESTS = 12_000
SEED = 7


def main() -> None:
    # A fast affine service model (0.5 ms setup + 20 us/query, knee 16);
    # swap in AffineServiceModel.from_batch_points(...) to calibrate from a
    # real Table 3 benchmark like `python -m repro cluster` does.
    service = AffineServiceModel(base=5e-4, per_query=2e-5, knee=16)
    config = ClusterConfig(
        data_nodes=8,
        service_nodes=2,
        shards=4,
        replicas=12,
        racks=2,
        slots_per_node=2,
        slo=SLO_S,
    )
    capacity = cluster_saturating_rate(service, config)
    rate = 0.8 * capacity
    arrivals = poisson_arrivals(rate, NUM_REQUESTS, seed=SEED)
    span = float(arrivals[-1])
    print(f"=== Fleet: {config.data_nodes} data + {config.service_nodes}"
          f" service nodes, {config.shards} shards x"
          f" {config.replicas // config.shards} replicas,"
          f" SLO {SLO_S * 1e3:.0f} ms ===")
    print(f"    saturates at {capacity:,.0f} q/s; offering"
          f" {rate:,.0f} q/s over {span * 1e3:.0f} ms of arrivals\n")

    campaigns = {
        "healthy": ClusterFaultConfig.disabled(),
        "faulted": ClusterFaultConfig(
            seed=SEED,
            node_crashes=2,
            crash_duration=0.25 * span,
            partitions=1,
            partition_duration=0.10 * span,
            slow_nodes=2,
            slow_duration=0.30 * span,
            horizon=0.80 * span,
        ),
    }
    rows = []
    reports = {}
    for name, fault_config in campaigns.items():
        simulator = build_cluster(
            service, config, seed=SEED, fault_config=fault_config
        )
        report = simulator.run(arrivals)
        reports[name] = report
        rows.append([
            name,
            f"{report.completed:,}",
            f"{report.shed_rate:.1%}",
            f"{report.cache_hit_rate:.1%}",
            f"{report.p99 * 1e3:.2f} ms",
            f"{report.slo_attainment:.1%}",
            f"{report.steals}",
            f"{report.redispatches + report.parked_events}",
            f"{report.failover_downtime:.3f} s",
        ])
    print(render_table(
        ["campaign", "completed", "shed", "cache", "p99", "SLO",
         "steals", "failovers", "shard outage"],
        rows,
    ))

    timeline = reports["faulted"].failover_timeline
    print(f"\nFailover timeline ({len(timeline)} events):")
    for event in timeline[:10]:
        arrow = ("parked" if event.to_node < 0
                 else f"node {event.from_node} -> {event.to_node}")
        print(f"  t={event.time * 1e3:8.3f} ms  {event.action:<10}"
              f" shard {event.shard}  task {event.task_id}  ({arrow})")
    if len(timeline) > 10:
        print(f"  ... {len(timeline) - 10} more")

    print(
        "\nEvery arrival is accounted for (completed + shed == arrived) in"
        " both campaigns, and the shard outage stays at 0.000 s: rack-spread"
        "\nplacement means no crash schedule takes every replica of a shard"
        " down at once, so tasks fail over instead of waiting.  Rerun this"
        "\nscript — same seed, same timeline, byte for byte."
    )


if __name__ == "__main__":
    main()
