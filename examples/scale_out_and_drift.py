#!/usr/bin/env python3
"""Scale-out and adaptivity: the operational side of ECSSD (paper §5.3, §7.1).

Part 1 partitions a 500M-category classifier across an ECSSD cluster the way
§7.1 proposes and times a batch end to end, including the host-side top-k
merge.  Part 2 shows why the interleaving framework is *adaptive*: a
placement tuned on last month's query distribution loses channel balance as
label hotness drifts, and re-fine-tuning on fresh traffic restores it.

Run:  python examples/scale_out_and_drift.py
"""

from repro.analysis.ablations import drift_study
from repro.analysis.reporting import format_seconds, render_table
from repro.core.deployment import DeploymentModel
from repro.core.scaleout import ScaleOutCluster, max_labels_per_device
from repro.workloads.benchmarks import get_benchmark


def scale_out_demo() -> None:
    print("=== §7.1: 500M categories across an ECSSD cluster ===")
    spec = get_benchmark("XMLCNN-S100M").scaled(500_000_000, "S500M")
    limit = max_labels_per_device(spec)
    print(f"One device's 16 GiB DRAM holds {limit / 1e6:.0f}M categories of"
          f" 4-bit codes; the paper shards 500M at 100M/device -> 5 ECSSDs.\n")

    cluster = ScaleOutCluster(spec, devices=5)
    report = cluster.run_trace(queries=8, sample_tiles=5)
    rows = [
        [f"ECSSD {i}", f"{r.scaled_total_time:.3g} s",
         f"{r.fp32_channel_utilization:.0%}"]
        for i, r in enumerate(report.shard_reports)
    ]
    print(render_table(["device", "shard time (8 queries)", "fp32 util"], rows))
    serial = sum(r.scaled_total_time for r in report.shard_reports)
    print(f"\ncluster total: {report.total_time:.3g} s (parallel)"
          f" vs {serial:.3g} s if run serially;"
          f" merge adds {format_seconds(report.merge_time)}\n")

    deploy = DeploymentModel().deploy(spec.scaled(100_000_000, "per-device"))
    print(f"Per-device deployment (100M shard): {format_seconds(deploy.total_time)},"
          f" bottleneck = flash {deploy.bottleneck}.\n")


def drift_demo() -> None:
    print("=== §5.3: placement staleness under query-distribution drift ===")
    points = drift_study()
    rows = [
        [f"{p.drift:.0%}", f"{p.stale_balance:.2f}", f"{p.retuned_balance:.2f}"]
        for p in points
    ]
    print(render_table(
        ["hotness drift", "stale placement balance", "after re-tuning"],
        rows,
    ))
    print("\nA placement frozen at deploy time decays toward uniform-"
          "interleaving balance as hotness drifts; periodic re-fine-tuning"
          "\n(frequencies from fresh traffic + FTL logical-address rewrites)"
          " restores near-perfect balance — the 'adaptive' in the"
          " framework's name.")


def main() -> None:
    scale_out_demo()
    drift_demo()


if __name__ == "__main__":
    main()
