#!/usr/bin/env python3
"""SSD substrate explorer: the device under ECSSD, in plain SSD mode (§2.2).

Exercises the NAND simulator directly: geometry, FTL address translation,
sequential vs random reads, garbage collection under overwrite churn, and
wear leveling — the mechanics the in-storage accelerator builds on.

Run:  python examples/ssd_explorer.py
"""

import random

from repro.analysis.reporting import format_seconds, render_table
from repro.config import ECSSDConfig, validate_table2
from repro.ssd.device import SSDDevice
from repro.units import pretty_bytes


def geometry_tour(device: SSDDevice) -> None:
    print("=== Table 2 geometry ===")
    flash = device.config.flash
    rows = [
        ["capacity", pretty_bytes(flash.capacity_bytes)],
        ["channels", flash.channels],
        ["dies per channel", flash.dies_per_channel],
        ["page size", pretty_bytes(flash.page_size)],
        ["channel bandwidth", "1 GB/s"],
        ["aggregate internal bandwidth", f"{flash.internal_bandwidth / 1e9:.0f} GB/s"],
        ["host link", f"{device.config.host_bandwidth / 1e9:.1f} GB/s"],
    ]
    print(render_table(["parameter", "value"], rows))
    print()


def address_translation(device: SSDDevice) -> None:
    print("=== FTL address translation ===")
    lpa = device.ftl.channel_logical_range(3).start + 17
    address = device.ftl.write(lpa)
    print(f"logical page {lpa} -> {address}")
    print(f"(channel {address.channel} as promised by the per-channel logical"
          " ranges the interleaving framework relies on)\n")


def striped_vs_single_channel(device: SSDDevice) -> None:
    print("=== Channel striping: 16 MiB read, 8 channels vs 1 ===")
    pages = 16 * 256  # 16 MiB of 4 KiB pages
    # Striped: logical pages drawn round-robin from every channel's range.
    striped = [
        device.ftl.channel_logical_range(i % 8).start + i // 8
        for i in range(pages)
    ]
    # Single-channel: one contiguous run inside channel 0's range.
    single = [device.ftl.channel_logical_range(0).start + i for i in range(pages)]
    for lpa in striped + single:
        device.ftl.write(lpa)
    device.reset_timing()
    t_striped = device.host_read(striped)
    device.reset_timing()
    t_single = device.host_read(single)
    print(render_table(
        ["pattern", "time", "effective bandwidth"],
        [
            ["striped over 8 channels", format_seconds(t_striped),
             f"{pages * 4096 / t_striped / 1e9:.2f} GB/s"],
            ["single channel", format_seconds(t_single),
             f"{pages * 4096 / t_single / 1e9:.2f} GB/s"],
        ],
    ))
    print("(channel-level parallelism is the bandwidth ECSSD's interleaving"
          " fights to keep busy)\n")


def churn_and_wear() -> None:
    print("=== Garbage collection and wear under overwrite churn ===")
    # A deliberately tiny device so churn actually exhausts free blocks;
    # on the 4 TB default, 200k writes never trigger GC (as they shouldn't).
    from repro.config import FlashConfig

    tiny = SSDDevice(ECSSDConfig(flash=FlashConfig(
        channels=2, packages_per_channel=1, dies_per_package=1,
        planes_per_die=1, blocks_per_plane=16, pages_per_block=32,
    )))
    rng = random.Random(1)
    hot_set = [tiny.ftl.channel_logical_range(0).start + i for i in range(64)]
    for _ in range(200_000):
        tiny.ftl.write(rng.choice(hot_set))
    lo, hi, mean = tiny.ftl.wear_stats()
    print(f"GC invocations: {len(tiny.ftl.gc_events)}")
    print(f"pages relocated: {tiny.ftl.pages_relocated}")
    print(f"erase counts across touched blocks: min {lo}, max {hi}, mean {mean:.1f}")
    print("(min-wear allocation keeps the spread tight — wear leveling)\n")


def main() -> None:
    config = ECSSDConfig()
    validate_table2(config)
    device = SSDDevice(config)
    geometry_tour(device)
    address_translation(device)
    striped_vs_single_channel(device)
    churn_and_wear()


if __name__ == "__main__":
    main()
